package sat

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SearchRecorder turns the live Progress feed into a retrospective
// SearchReport: a bounded timeline of effort samples, restart/simplify
// event marks, decision-depth and learnt-clause LBD distributions, and a
// per-configuration effort breakdown for portfolio races.
//
// The recorder rides on Progress (SetRecorder), so it reaches every
// solver the Progress reaches — portfolio goroutines, fperf's sequential
// checks, session re-solves — with no extra plumbing. Solvers feed it
// only on the amortized budget-check cadence (the same publish calls that
// update Progress) plus one call per restart/simplify/solve boundary, so
// the CDCL hot loop never sees it. All methods are nil-safe and
// mutex-guarded; Report may be called concurrently with live solving.
type SearchRecorder struct {
	start time.Time

	mu            sync.Mutex
	samples       []SearchSample
	stride        int // publishes per kept sample; doubles on decimation
	skip          int // publishes to skip before the next kept sample
	events        []SearchEvent
	eventsDropped int64
	depth         [len(depthBucketBounds) + 1]int64
	lbd           [lbdOverflowBucket + 1]int64
	totals        Stats
	maxBudget     float64
	solves        int64
	configs       map[string]*ConfigEffort
}

// maxSamples bounds the timeline; when full the recorder drops every
// other sample and doubles its stride, so long solves keep a
// shape-preserving, progressively coarser timeline instead of losing the
// tail. maxEvents bounds event marks the same way drops are counted for
// spans: overflow increments EventsDropped instead of growing without
// bound.
const (
	maxSamples = 512
	maxEvents  = 512
)

// depthBucketBounds are the inclusive upper bounds of the decision-depth
// histogram buckets; a final overflow bucket catches deeper samples.
var depthBucketBounds = [...]int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// lbdOverflowBucket is the index of the "LBD >= 17" bucket; buckets
// 0..15 hold exact LBDs 1..16.
const lbdOverflowBucket = 16

// NewSearchRecorder returns an empty recorder whose timeline starts now.
func NewSearchRecorder() *SearchRecorder {
	return &SearchRecorder{
		start:   time.Now(),
		stride:  1,
		configs: make(map[string]*ConfigEffort),
	}
}

// SearchSample is one point on the job-wide effort timeline. The
// counters are cumulative across every solver attached to the job's
// Progress; Depth and Config describe the particular solver that
// published this sample.
type SearchSample struct {
	AtMS           float64 `json:"at_ms"`
	Conflicts      int64   `json:"conflicts"`
	Decisions      int64   `json:"decisions"`
	Propagations   int64   `json:"propagations"`
	Restarts       int64   `json:"restarts"`
	Learnt         int64   `json:"learnt_clauses"`
	LearntBytes    int64   `json:"learnt_bytes"`
	BudgetFraction float64 `json:"budget_fraction,omitempty"`
	Depth          int     `json:"depth"`
	Config         string  `json:"config,omitempty"`
}

// SearchEvent marks a discrete search occurrence on the timeline.
// Kind is one of "restart" (Detail: next restart interval in conflicts),
// "simplify" (Detail: learnt clauses removed), "solve_start" or
// "solve_end" (Detail: the solver's StopReason, 0 when conclusive).
// Conflicts is the job-wide cumulative count when the event fired.
type SearchEvent struct {
	AtMS      float64 `json:"at_ms"`
	Kind      string  `json:"kind"`
	Config    string  `json:"config,omitempty"`
	Conflicts int64   `json:"conflicts"`
	Detail    int64   `json:"detail,omitempty"`
}

// ConfigEffort aggregates one portfolio configuration's share of the
// job's search effort. For non-portfolio solves there is a single entry
// with an empty name.
type ConfigEffort struct {
	Name         string `json:"name"`
	Solves       int64  `json:"solves"`
	Conflicts    int64  `json:"conflicts"`
	Decisions    int64  `json:"decisions"`
	Propagations int64  `json:"propagations"`
	Restarts     int64  `json:"restarts"`
	Learnt       int64  `json:"learnt_clauses"`
	Winner       bool   `json:"winner,omitempty"`
}

// DistBucket is one histogram bucket: Count observations at most Le
// (and above the previous bucket's bound); Le is "+inf" for overflow.
type DistBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Distribution is a fixed-bucket histogram; zero-count buckets are
// omitted.
type Distribution struct {
	Count   int64        `json:"count"`
	Buckets []DistBucket `json:"buckets,omitempty"`
}

// SearchReport is the introspectable record of one job's search,
// attached to service results, served by /v1/jobs/{id}/explain and
// rendered by buffyc -explain. It must survive a JSON round trip (the
// durable store serializes results), so everything here is plain data.
type SearchReport struct {
	DurationMS float64 `json:"duration_ms"`
	// SampleStride is how many publish-cadence points each kept sample
	// represents (1 = every publish kept; doubles when the timeline is
	// decimated).
	SampleStride  int              `json:"sample_stride"`
	Samples       []SearchSample   `json:"samples"`
	Events        []SearchEvent    `json:"events,omitempty"`
	EventsDropped int64            `json:"events_dropped,omitempty"`
	Totals        ProgressSnapshot `json:"totals"`
	Depth         Distribution     `json:"decision_depth"`
	LBD           Distribution     `json:"lbd"`
	Configs       []ConfigEffort   `json:"configs,omitempty"`
	// Winner names the portfolio configuration that produced the answer;
	// empty for single-config solves. Set by the caller that knows the
	// race outcome (service / buffyc), not by the recorder.
	Winner string `json:"winner,omitempty"`
}

// observe ingests one publish-cadence point from a solver: the effort
// delta since that solver's previous publish, the job-wide cumulative
// snapshot after applying it, the solver's current decision depth, and
// the delta of its LBD histogram.
func (r *SearchRecorder) observe(config string, d Stats, snap ProgressSnapshot, depth int, lbdDelta *[lbdOverflowBucket + 1]int64) {
	if r == nil {
		return
	}
	at := time.Since(r.start)
	r.mu.Lock()
	defer r.mu.Unlock()

	r.totals.Conflicts += d.Conflicts
	r.totals.Decisions += d.Decisions
	r.totals.Propagations += d.Propagations
	r.totals.Restarts += d.Restarts
	r.totals.Learnt += d.Learnt
	r.totals.LearntBytes += d.LearntBytes
	if snap.BudgetFraction > r.maxBudget {
		r.maxBudget = snap.BudgetFraction
	}

	ce := r.effortLocked(config)
	ce.Conflicts += d.Conflicts
	ce.Decisions += d.Decisions
	ce.Propagations += d.Propagations
	ce.Restarts += d.Restarts
	ce.Learnt += d.Learnt

	r.depth[depthBucket(int64(depth))]++
	if lbdDelta != nil {
		for i, n := range lbdDelta {
			r.lbd[i] += n
		}
	}

	if r.skip > 0 {
		r.skip--
		return
	}
	r.samples = append(r.samples, SearchSample{
		AtMS:           float64(at.Microseconds()) / 1000,
		Conflicts:      snap.Conflicts,
		Decisions:      snap.Decisions,
		Propagations:   snap.Propagations,
		Restarts:       snap.Restarts,
		Learnt:         snap.Learnt,
		LearntBytes:    snap.LearntBytes,
		BudgetFraction: snap.BudgetFraction,
		Depth:          depth,
		Config:         config,
	})
	r.skip = r.stride - 1
	if len(r.samples) >= maxSamples {
		// Decimate: keep every other sample, double the stride. The
		// timeline keeps its overall shape at half the resolution.
		kept := r.samples[:0]
		for i := 0; i < len(r.samples); i += 2 {
			kept = append(kept, r.samples[i])
		}
		r.samples = kept
		r.stride *= 2
		r.skip = r.stride - 1
	}
}

// event records a discrete search event mark.
func (r *SearchRecorder) event(kind, config string, conflicts, detail int64) {
	if r == nil {
		return
	}
	at := time.Since(r.start)
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "solve_start" {
		r.solves++
		r.effortLocked(config).Solves++
	}
	if len(r.events) >= maxEvents {
		r.eventsDropped++
		return
	}
	r.events = append(r.events, SearchEvent{
		AtMS:      float64(at.Microseconds()) / 1000,
		Kind:      kind,
		Config:    config,
		Conflicts: conflicts,
		Detail:    detail,
	})
}

// effortLocked returns (creating if needed) the per-config aggregate.
func (r *SearchRecorder) effortLocked(config string) *ConfigEffort {
	ce := r.configs[config]
	if ce == nil {
		ce = &ConfigEffort{Name: config}
		r.configs[config] = ce
	}
	return ce
}

// depthBucket maps a decision depth to its histogram bucket index.
func depthBucket(d int64) int {
	for i, b := range depthBucketBounds {
		if d <= b {
			return i
		}
	}
	return len(depthBucketBounds)
}

// Report snapshots the recorder into a standalone SearchReport. Safe to
// call while solvers are still publishing; the result is internally
// consistent under the recorder's lock. Nil-safe (returns nil).
func (r *SearchRecorder) Report() *SearchReport {
	if r == nil {
		return nil
	}
	dur := time.Since(r.start)
	r.mu.Lock()
	defer r.mu.Unlock()

	rep := &SearchReport{
		DurationMS:    float64(dur.Microseconds()) / 1000,
		SampleStride:  r.stride,
		Samples:       append([]SearchSample(nil), r.samples...),
		Events:        append([]SearchEvent(nil), r.events...),
		EventsDropped: r.eventsDropped,
		Totals: ProgressSnapshot{
			Conflicts:      r.totals.Conflicts,
			Decisions:      r.totals.Decisions,
			Propagations:   r.totals.Propagations,
			Restarts:       r.totals.Restarts,
			Learnt:         r.totals.Learnt,
			LearntBytes:    r.totals.LearntBytes,
			Solves:         r.solves,
			BudgetFraction: r.maxBudget,
		},
	}

	for i, n := range r.depth {
		rep.Depth.Count += n
		if n == 0 {
			continue
		}
		le := "+inf"
		if i < len(depthBucketBounds) {
			le = fmt.Sprintf("%d", depthBucketBounds[i])
		}
		rep.Depth.Buckets = append(rep.Depth.Buckets, DistBucket{Le: le, Count: n})
	}
	for i, n := range r.lbd {
		rep.LBD.Count += n
		if n == 0 {
			continue
		}
		le := "+inf"
		if i < lbdOverflowBucket {
			le = fmt.Sprintf("%d", i+1)
		}
		rep.LBD.Buckets = append(rep.LBD.Buckets, DistBucket{Le: le, Count: n})
	}

	for _, ce := range r.configs {
		rep.Configs = append(rep.Configs, *ce)
	}
	sort.Slice(rep.Configs, func(i, j int) bool {
		if rep.Configs[i].Conflicts != rep.Configs[j].Conflicts {
			return rep.Configs[i].Conflicts > rep.Configs[j].Conflicts
		}
		return rep.Configs[i].Name < rep.Configs[j].Name
	})
	return rep
}

// sparkRunes render a series as a one-line unicode sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// downsample reduces a series to at most n points by averaging runs, so
// sparklines fit a terminal line regardless of sample count.
func downsample(vals []float64, n int) []float64 {
	if len(vals) <= n {
		return vals
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(vals)/n, (i+1)*len(vals)/n
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out = append(out, sum/float64(hi-lo))
	}
	return out
}

// Render formats the report as a human-readable terminal block:
// sparkline timelines of per-sample effort deltas, event counts, the
// depth/LBD histograms as bars, and the per-config table (winner
// starred). Nil-safe (returns "").
func (r *SearchReport) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "search: %d conflicts, %d propagations, %d restarts, %d learnt in %.1fms (%d solves)\n",
		r.Totals.Conflicts, r.Totals.Propagations, r.Totals.Restarts, r.Totals.Learnt, r.DurationMS, r.Totals.Solves)
	if r.Totals.BudgetFraction > 0 {
		fmt.Fprintf(&b, "budget: %.0f%% of the tightest resource budget consumed\n", r.Totals.BudgetFraction*100)
	}

	if len(r.Samples) >= 2 {
		const width = 60
		deltas := func(f func(SearchSample) float64) []float64 {
			out := make([]float64, 0, len(r.Samples)-1)
			for i := 1; i < len(r.Samples); i++ {
				d := f(r.Samples[i]) - f(r.Samples[i-1])
				if d < 0 {
					d = 0
				}
				out = append(out, d)
			}
			return downsample(out, width)
		}
		abs := func(f func(SearchSample) float64) []float64 {
			out := make([]float64, 0, len(r.Samples))
			for _, s := range r.Samples {
				out = append(out, f(s))
			}
			return downsample(out, width)
		}
		fmt.Fprintf(&b, "timeline (%d samples, stride %d, %.1fms span):\n", len(r.Samples), r.SampleStride, r.Samples[len(r.Samples)-1].AtMS-r.Samples[0].AtMS)
		fmt.Fprintf(&b, "  conflicts/sample    %s\n", sparkline(deltas(func(s SearchSample) float64 { return float64(s.Conflicts) })))
		fmt.Fprintf(&b, "  propagations/sample %s\n", sparkline(deltas(func(s SearchSample) float64 { return float64(s.Propagations) })))
		fmt.Fprintf(&b, "  learnt bytes        %s\n", sparkline(abs(func(s SearchSample) float64 { return float64(s.LearntBytes) })))
		fmt.Fprintf(&b, "  decision depth      %s\n", sparkline(abs(func(s SearchSample) float64 { return float64(s.Depth) })))
	}

	if len(r.Events) > 0 {
		counts := map[string]int{}
		for _, e := range r.Events {
			counts[e.Kind]++
		}
		fmt.Fprintf(&b, "events: %d restarts, %d simplify rounds, %d solves",
			counts["restart"], counts["simplify"], counts["solve_start"])
		if r.EventsDropped > 0 {
			fmt.Fprintf(&b, " (+%d marks dropped)", r.EventsDropped)
		}
		b.WriteString("\n")
	}

	histogram := func(name string, d Distribution) {
		if d.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "%s (%d observations):\n", name, d.Count)
		max := int64(1)
		for _, bk := range d.Buckets {
			if bk.Count > max {
				max = bk.Count
			}
		}
		for _, bk := range d.Buckets {
			bar := strings.Repeat("█", int(bk.Count*30/max)+1)
			fmt.Fprintf(&b, "  le %-5s %8d %s\n", bk.Le, bk.Count, bar)
		}
	}
	histogram("decision depth at sample", r.Depth)
	histogram("learnt-clause LBD", r.LBD)

	if len(r.Configs) > 1 || (len(r.Configs) == 1 && r.Configs[0].Name != "") {
		fmt.Fprintf(&b, "%-16s %8s %10s %12s %8s %7s\n", "config", "solves", "conflicts", "propagations", "restarts", "learnt")
		for _, c := range r.Configs {
			marker := " "
			if c.Winner || (r.Winner != "" && c.Name == r.Winner) {
				marker = "*"
			}
			fmt.Fprintf(&b, "%-15s%s %8d %10d %12d %8d %7d\n",
				c.Name, marker, c.Solves, c.Conflicts, c.Propagations, c.Restarts, c.Learnt)
		}
		if r.Winner != "" {
			fmt.Fprintf(&b, "winner: %s\n", r.Winner)
		}
	}
	return b.String()
}
