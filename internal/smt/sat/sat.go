// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver: two-watched-literal propagation, first-UIP clause learning with
// recursive minimization, VSIDS branching with phase saving, Luby restarts
// and LBD-based learnt-clause reduction. It is the decision procedure at the
// bottom of Buffy's solver stack; the bit-blasting layer reduces bounded
// integer formulas to the CNF this package solves.
//
// The search heuristics — restart schedule, VSIDS decay, decision
// polarity, randomized branching, learnt-DB limits — are configurable
// through Options (see NewWithOptions); the zero value reproduces the
// classic configuration. Diversifying these knobs is the basis of the
// portfolio layer, which races configurations and takes the first
// conclusive answer.
package sat

import (
	"fmt"
	"os"
	"time"

	"buffy/internal/smt/cnf"
	"buffy/internal/telemetry"
)

// Fingerprint names the decision procedure's semantics for the durable
// result store's pipeline fingerprint. Heuristic changes (restart
// schedules, branching order) do not require a bump — they cannot change
// a sat/unsat answer — but a change to propagation, learning, or model
// reconstruction that could alter an answer or a model must bump it.
const Fingerprint = "cdcl-v1"

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type lbool uint8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits   []cnf.Lit
	lbd    uint32
	act    float32
	learnt bool
}

type watcher struct {
	c       *clause
	blocker cnf.Lit
}

// Stats records search effort counters. LearntBytes is the estimated
// memory held by the learnt-clause database at the time Stats was read
// (a gauge, unlike the cumulative counters).
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Removed      int64
	LearntBytes  int64
}

// StopReason explains why a Solve call returned Unknown: which resource
// budget was exhausted, or that the caller cancelled. StopNone means the
// last solve was conclusive (or none has run).
type StopReason int

// Stop reasons, in the order the budget check tests them.
const (
	StopNone StopReason = iota
	// StopConflicts: Limits.MaxConflicts exhausted.
	StopConflicts
	// StopPropagations: Limits.MaxPropagations exhausted.
	StopPropagations
	// StopLearntBytes: the learnt-clause database outgrew
	// Limits.MaxLearntBytes.
	StopLearntBytes
	// StopDeadline: Limits.Deadline passed.
	StopDeadline
	// StopCancel: Limits.Cancel became readable.
	StopCancel
)

func (r StopReason) String() string {
	switch r {
	case StopConflicts:
		return "conflicts"
	case StopPropagations:
		return "propagations"
	case StopLearntBytes:
		return "learnt-bytes"
	case StopDeadline:
		return "deadline"
	case StopCancel:
		return "cancel"
	}
	return ""
}

// Budget reports whether the stop reason is a resource budget (retryable
// with a bigger budget), as opposed to a deadline or cancellation.
func (r StopReason) Budget() bool {
	return r == StopConflicts || r == StopPropagations || r == StopLearntBytes
}

// Limits bounds a Solve call. Zero values mean unlimited.
type Limits struct {
	// MaxConflicts bounds CDCL conflicts for this call.
	MaxConflicts int64
	// MaxPropagations bounds unit propagations for this call. Propagation
	// dominates solver wall time, so this is the closest proxy for a CPU
	// budget that stays deterministic across machines.
	MaxPropagations int64
	// MaxLearntBytes bounds the estimated memory held by the learnt-clause
	// database. When learning outruns reduction past this budget the solve
	// gives up instead of growing without bound.
	MaxLearntBytes int64
	Deadline       time.Time
	// Cancel aborts the search cooperatively when it becomes readable
	// (typically a context's Done channel). The solver polls it on the
	// same amortized cadence as MaxConflicts, so Solve returns Unknown
	// within a bounded number of search steps after cancellation.
	Cancel <-chan struct{}
	// Progress, when set, receives a lock-free live snapshot of search
	// effort: the solver publishes counter deltas on the amortized
	// budget-check cadence, so concurrent readers (a service progress
	// endpoint) never touch the hot-path Stats fields. Shareable across
	// concurrent solves — each publishes only its own delta.
	Progress *Progress
	// Span, when set, parents search-level telemetry spans: one per
	// restart and per learnt-DB reduction round. The span's trace bounds
	// how many are kept.
	Span *telemetry.Span
}

// cancelled reports whether the cancel channel is readable.
func (l Limits) cancelled() bool {
	if l.Cancel == nil {
		return false
	}
	select {
	case <-l.Cancel:
		return true
	default:
		return false
	}
}

// Solver is a CDCL SAT solver. Create with New, add variables and clauses,
// then call Solve. A Solver may be re-solved after adding more clauses
// (incremental use); learnt clauses are retained.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause

	watches [][]watcher // indexed by lit

	assign   []lbool // indexed by var
	level    []int32 // indexed by var
	reason   []*clause
	phase    []bool // saved phase, indexed by var
	activity []float64
	varInc   float64

	heap    []cnf.Var // binary max-heap on activity
	heapPos []int32   // var -> heap index, -1 if absent

	trail    []cnf.Lit
	trailLim []int32 // decision level -> trail index
	qhead    int

	numVars int
	ok      bool // false once a top-level conflict is found

	opts     Options
	rndState uint64 // xorshift state for random branching (0 = disabled)

	stats Stats
	// learntBytes estimates the learnt-DB footprint; stopReason records
	// why the last SolveLimited returned Unknown (StopNone otherwise).
	learntBytes int64
	stopReason  StopReason
	// lbdHist counts learnt clauses by LBD: index i holds LBD i+1, the
	// last bucket everything >= lbdOverflowBucket+1. One increment per
	// learnt clause; published as deltas to an attached SearchRecorder.
	lbdHist [lbdOverflowBucket + 1]int64

	// debug enables expensive internal invariant checking after every
	// propagation fixpoint; used by fuzz-style tests.
	debug bool

	seen    []bool // analyze scratch
	minStk  []cnf.Lit
	clearBf []cnf.Var

	claInc float32
}

// New returns an empty solver with the classic heuristic configuration.
func New() *Solver {
	return NewWithOptions(Options{})
}

// NewWithOptions returns an empty solver using the given search
// heuristics. Zero-valued knobs fall back to the classic defaults, so
// NewWithOptions(Options{}) is identical to New.
func NewWithOptions(opts Options) *Solver {
	s := &Solver{ok: true, varInc: 1.0, claInc: 1.0, opts: opts.withDefaults()}
	s.rndState = s.opts.RandSeed
	s.ensureVar(0)
	return s
}

// Options returns the solver's (normalized) heuristic configuration.
func (s *Solver) Options() Options { return s.opts }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() cnf.Var {
	s.numVars++
	v := cnf.Var(s.numVars)
	s.ensureVar(v)
	return v
}

func (s *Solver) ensureVar(v cnf.Var) {
	need := int(v) + 1
	for len(s.assign) < need {
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.phase = append(s.phase, s.opts.InitPhase)
		s.activity = append(s.activity, 0)
		s.heapPos = append(s.heapPos, -1)
		s.seen = append(s.seen, false)
	}
	for len(s.watches) < 2*need {
		s.watches = append(s.watches, nil)
	}
}

// ImportVars makes sure variables up to n exist (for loading a cnf.Formula).
func (s *Solver) ImportVars(n int) {
	for s.numVars < n {
		s.NewVar()
	}
}

// CloneProblem returns a fresh solver over this solver's problem clauses
// and top-level facts, searching under opts. Learnt clauses, saved phases,
// activities and statistics do not transfer: the clone explores the same
// problem from scratch, which is exactly what a portfolio race wants —
// same question, independent search trajectory. The receiver is only
// read, so concurrent clones are safe while no solve is running on it;
// only the level-0 prefix of the trail transfers.
func (s *Solver) CloneProblem(opts Options) *Solver {
	n := NewWithOptions(opts)
	n.ImportVars(s.numVars)
	if !s.ok {
		n.ok = false
		return n
	}
	lvl0 := s.trail
	if len(s.trailLim) > 0 {
		lvl0 = s.trail[:s.trailLim[0]]
	}
	for _, l := range lvl0 {
		if !n.AddClause(l) {
			return n
		}
	}
	for _, c := range s.clauses {
		if !n.AddClause(c.lits...) {
			return n
		}
	}
	return n
}

// LoadFormula imports all clauses of f.
func (s *Solver) LoadFormula(f *cnf.Formula) bool {
	s.ImportVars(f.NumVars())
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return true
}

func (s *Solver) litValue(l cnf.Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a problem clause. It returns false if the clause set is now
// unsatisfiable at the top level. Must be called at decision level 0 (i.e.
// between Solve calls).
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.ok {
		return false
	}
	// A previous Sat result leaves the model on the trail at a positive
	// decision level; new clauses are always added at level 0.
	s.backtrackTo(0)
	// Simplify: drop false lits, detect satisfied/tautological clauses.
	out := make([]cnf.Lit, 0, len(lits))
	seen := make(map[cnf.Lit]struct{}, len(lits))
	for _, l := range lits {
		if int(l.Var()) > s.numVars {
			s.ImportVars(int(l.Var()))
		}
		switch s.litValue(l) {
		case lTrue:
			return true // already satisfied
		case lFalse:
			continue
		}
		if _, dup := seen[l]; dup {
			continue
		}
		if _, taut := seen[l.Neg()]; taut {
			return true
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{c, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{c, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l cnf.Lit, from *clause) {
	v := l.Var()
	s.assign[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		i, j := 0, 0
		var confl *clause
		for i < len(ws) {
			w := ws[i]
			// Quick check: blocker already true?
			if s.litValue(w.blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.c
			// Make sure the false literal is lits[1].
			falseLit := p.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[j] = watcher{c, first}
				i++
				j++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1]
					s.watches[nl.Neg()] = append(s.watches[nl.Neg()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				i++
				continue // watcher moved; do not keep
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			i++
			j++
			if s.litValue(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				// copy the remaining watchers
				for i < len(ws) {
					ws[j] = ws[i]
					i++
					j++
				}
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
		if confl != nil {
			return confl
		}
	}
	return nil
}

// --- VSIDS heap ---

func (s *Solver) heapLess(a, b cnf.Var) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(v, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.heapPos[s.heap[i]] = int32(i)
		i = parent
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}

func (s *Solver) heapDown(i int) {
	v := s.heap[i]
	n := len(s.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = int32(i)
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}

func (s *Solver) heapInsert(v cnf.Var) {
	if s.heapPos[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.heapPos[v] = int32(len(s.heap) - 1)
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapPop() cnf.Var {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heapPos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if len(s.heap) > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(int(s.heapPos[v]))
	}
}

func (s *Solver) decayVar() { s.varInc /= s.opts.VarDecay }

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= float32(s.opts.ClauseDecay) }

// clauseBytes estimates a learnt clause's heap footprint: the clause
// struct + slice header plus 4 bytes per literal, rounded up for the two
// watcher entries referencing it.
func clauseBytes(c *clause) int64 { return 64 + 4*int64(len(c.lits)) }

// --- conflict analysis ---

// analyze performs first-UIP learning. It returns the learnt clause (with
// the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{cnf.LitUndef} // reserve slot 0 for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p cnf.Lit = cnf.LitUndef
	c := confl

	for {
		s.bumpClause(c)
		start := 0
		if p != cnf.LitUndef {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal to expand on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Neg()
			break
		}
		c = s.reason[v]
		if c == nil {
			s.dumpState(p, counter)
			panic("nil reason in analyze")
		}
	}

	// Mark for minimization check. Keep a copy of the pre-minimization
	// literals: the in-place filter below overwrites dropped entries, and
	// their seen flags must still be cleared at the end (stale flags would
	// corrupt the next conflict analysis).
	for _, l := range learnt {
		s.seen[l.Var()] = true
	}
	orig := append([]cnf.Lit(nil), learnt...)
	// Clause minimization: drop literals implied by the rest.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.reason[l.Var()] == nil || !s.litRedundant(l) {
			out = append(out, l)
		}
	}
	learnt = out

	// Compute backtrack level: highest level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	// Clear seen flags.
	for _, l := range orig {
		s.seen[l.Var()] = false
	}
	for _, v := range s.clearBf {
		s.seen[v] = false
	}
	s.clearBf = s.clearBf[:0]
	return learnt, btLevel
}

// litRedundant checks (non-recursively, with an explicit stack) whether l is
// implied by other literals marked in seen — standard learnt clause
// minimization.
func (s *Solver) litRedundant(l cnf.Lit) bool {
	s.minStk = s.minStk[:0]
	s.minStk = append(s.minStk, l)
	top := len(s.clearBf)
	for len(s.minStk) > 0 {
		p := s.minStk[len(s.minStk)-1]
		s.minStk = s.minStk[:len(s.minStk)-1]
		c := s.reason[p.Var()]
		if c == nil {
			// Reached a decision: not redundant, undo marks.
			for _, v := range s.clearBf[top:] {
				s.seen[v] = false
			}
			s.clearBf = s.clearBf[:top]
			return false
		}
		for _, q := range c.lits[1:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == nil {
				for _, u := range s.clearBf[top:] {
					s.seen[u] = false
				}
				s.clearBf = s.clearBf[:top]
				return false
			}
			s.seen[v] = true
			s.clearBf = append(s.clearBf, v)
			s.minStk = append(s.minStk, q)
		}
	}
	return true
}

func (s *Solver) computeLBD(lits []cnf.Lit) uint32 {
	levels := make(map[int32]struct{}, len(lits))
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return uint32(len(levels))
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(lim); i-- {
		l := s.trail[i]
		v := l.Var()
		s.assign[v] = lUndef
		s.phase[v] = !l.Sign()
		s.reason[v] = nil
		s.heapInsert(v)
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// --- restarts & reduction ---

// luby returns the i-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... (MiniSat's formulation with base 2).
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// restartInterval yields the next restart interval in conflicts: the
// Luby series scaled by base, or the geometric interval when configured.
func (s *Solver) restartInterval(base, curRestart int64, geomInterval float64) int64 {
	if s.opts.GeomRestarts {
		iv := int64(geomInterval)
		if iv < 1 {
			iv = 1
		}
		return iv
	}
	return base * luby(curRestart)
}

// nextRand advances the solver's deterministic xorshift64 state.
func (s *Solver) nextRand() uint64 {
	x := s.rndState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rndState = x
	return x
}

// randChance reports whether this decision should branch randomly.
func (s *Solver) randChance() bool {
	return float64(s.nextRand()%1024)/1024.0 < s.opts.RandFreq
}

// randomUnassigned samples the decision heap a few times for an
// unassigned variable; 0 means none found (caller falls back to VSIDS).
func (s *Solver) randomUnassigned() cnf.Var {
	for try := 0; try < 8 && len(s.heap) > 0; try++ {
		v := s.heap[s.nextRand()%uint64(len(s.heap))]
		if s.assign[v] == lUndef {
			return v
		}
	}
	return 0
}

func (s *Solver) reduceDB() {
	// Sort learnts: keep low-LBD and active clauses. Simple selection:
	// remove half with highest LBD (ties by activity), never LBD<=2 or
	// clauses currently used as reasons.
	if len(s.learnts) < 2 {
		return
	}
	ls := make([]*clause, len(s.learnts))
	copy(ls, s.learnts)
	// insertion sort by (lbd desc, act asc)
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0; j-- {
			a, b := ls[j-1], ls[j]
			if a.lbd > b.lbd || (a.lbd == b.lbd && a.act < b.act) {
				break
			}
			ls[j-1], ls[j] = b, a
		}
	}
	locked := make(map[*clause]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil {
			locked[r] = true
		}
	}
	removed := make(map[*clause]bool)
	for _, c := range ls[:len(ls)/2] {
		if c.lbd <= 2 || locked[c] {
			continue
		}
		removed[c] = true
		s.stats.Removed++
		s.learntBytes -= clauseBytes(c)
	}
	if len(removed) == 0 {
		return
	}
	keep := s.learnts[:0]
	for _, c := range s.learnts {
		if !removed[c] {
			keep = append(keep, c)
		}
	}
	s.learnts = keep
	// Rebuild watches (simplest correct approach).
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.attach(c)
	}
	for _, c := range s.learnts {
		s.attach(c)
	}
}

// --- main search ---

// Solve searches for a satisfying assignment under the given assumptions.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	return s.SolveLimited(Limits{}, assumptions...)
}

// budgetStop reports which (if any) of the call's resource budgets is
// exhausted; deadline and cancellation are checked separately because
// they poll the clock / a channel rather than counters.
func (s *Solver) budgetStop(lim Limits, conflicts0, props0 int64) StopReason {
	if lim.MaxConflicts > 0 && s.stats.Conflicts-conflicts0 > lim.MaxConflicts {
		return StopConflicts
	}
	if lim.MaxPropagations > 0 && s.stats.Propagations-props0 > lim.MaxPropagations {
		return StopPropagations
	}
	if lim.MaxLearntBytes > 0 && s.learntBytes > lim.MaxLearntBytes {
		return StopLearntBytes
	}
	return StopNone
}

// budgetFraction reports the largest consumed fraction of any configured
// budget for this call, in [0, 1]; 0 when no budget is set. It feeds the
// live progress snapshot so pollers can see how close a long solve is to
// giving up.
func (s *Solver) budgetFraction(lim Limits, conflicts0, props0 int64, start time.Time) float64 {
	frac := 0.0
	if lim.MaxConflicts > 0 {
		if f := float64(s.stats.Conflicts-conflicts0) / float64(lim.MaxConflicts); f > frac {
			frac = f
		}
	}
	if lim.MaxPropagations > 0 {
		if f := float64(s.stats.Propagations-props0) / float64(lim.MaxPropagations); f > frac {
			frac = f
		}
	}
	if lim.MaxLearntBytes > 0 {
		if f := float64(s.learntBytes) / float64(lim.MaxLearntBytes); f > frac {
			frac = f
		}
	}
	if !lim.Deadline.IsZero() {
		if total := lim.Deadline.Sub(start); total > 0 {
			if f := float64(time.Since(start)) / float64(total); f > frac {
				frac = f
			}
		}
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// SolveLimited is Solve with a resource budget; it returns Unknown when the
// budget is exhausted, with StopReason() recording which limit fired.
func (s *Solver) SolveLimited(lim Limits, assumptions ...cnf.Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.stopReason = StopNone
	if lim.cancelled() {
		s.stopReason = StopCancel
		return Unknown
	}
	s.backtrackTo(0)
	// (Re)fill the heap with all unassigned vars.
	for v := cnf.Var(1); int(v) <= s.numVars; v++ {
		if s.assign[v] == lUndef {
			s.heapInsert(v)
		}
	}
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}

	restartBase := s.opts.RestartBase
	conflictsAtStart := s.stats.Conflicts
	propsAtStart := s.stats.Propagations
	var curRestart int64 = 0
	geomInterval := float64(restartBase)
	nextRestart := s.stats.Conflicts + s.restartInterval(restartBase, curRestart, geomInterval)
	learntLimit := int64(float64(len(s.clauses))*s.opts.LearntFrac) + s.opts.LearntBase
	checkTick := 0

	// Live progress: publish effort deltas on the amortized check cadence
	// and once more on every exit path. The hot loop never touches the
	// shared Progress outside publish calls, so Stats stays unsynchronized
	// on the solver's own goroutine while pollers read atomics.
	solveStart := time.Now()
	pub := progressPub{p: lim.Progress, name: s.opts.Name}
	if lim.Progress != nil {
		pub.last = s.stats
		pub.last.LearntBytes = s.learntBytes
		pub.lastLBD = s.lbdHist
		lim.Progress.solves.Add(1)
		lim.Progress.running.Add(1)
		pub.event(s, "solve_start", 0)
		defer func() {
			pub.publish(s, s.budgetFraction(lim, conflictsAtStart, propsAtStart, solveStart))
			pub.event(s, "solve_end", int64(s.stopReason))
			lim.Progress.running.Add(-1)
		}()
	}

	for {
		confl := s.propagate()
		if confl == nil && s.debug {
			s.checkInvariants("afterprop")
		}
		if confl != nil {
			s.stats.Conflicts++
			// Conflict storms bypass the decision-path budget check below,
			// so run the full budget/cancel check here too (same 64-step
			// cadence) — a pathological instance can burn its whole budget
			// without ever reaching a decision.
			if s.stats.Conflicts&63 == 0 {
				if pub.p != nil {
					pub.publish(s, s.budgetFraction(lim, conflictsAtStart, propsAtStart, solveStart))
				}
				if r := s.budgetStop(lim, conflictsAtStart, propsAtStart); r != StopNone {
					s.stopReason = r
					s.backtrackTo(0)
					return Unknown
				}
				if lim.cancelled() {
					s.stopReason = StopCancel
					s.backtrackTo(0)
					return Unknown
				}
				if !lim.Deadline.IsZero() && s.stats.Conflicts&1023 == 0 && time.Now().After(lim.Deadline) {
					s.stopReason = StopDeadline
					s.backtrackTo(0)
					return Unknown
				}
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			// Don't backtrack past the assumptions.
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				if s.decisionLevel() > 0 {
					s.backtrackTo(0)
				}
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, lbd: s.computeLBD(learnt)}
				if b := int(c.lbd) - 1; b >= 0 {
					if b > lbdOverflowBucket {
						b = lbdOverflowBucket
					}
					s.lbdHist[b]++
				}
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.learntBytes += clauseBytes(c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			s.decayClause()
			continue
		}

		// Budget check (amortized).
		checkTick++
		if checkTick&63 == 0 {
			if pub.p != nil {
				pub.publish(s, s.budgetFraction(lim, conflictsAtStart, propsAtStart, solveStart))
			}
			if r := s.budgetStop(lim, conflictsAtStart, propsAtStart); r != StopNone {
				s.stopReason = r
				s.backtrackTo(0)
				return Unknown
			}
			if lim.cancelled() {
				s.stopReason = StopCancel
				s.backtrackTo(0)
				return Unknown
			}
			if !lim.Deadline.IsZero() && checkTick&1023 == 0 && time.Now().After(lim.Deadline) {
				s.stopReason = StopDeadline
				s.backtrackTo(0)
				return Unknown
			}
		}

		// Restart?
		if s.stats.Conflicts >= nextRestart && s.decisionLevel() > len(assumptions) {
			s.stats.Restarts++
			curRestart++
			geomInterval *= s.opts.RestartGrowth
			nextRestart = s.stats.Conflicts + s.restartInterval(restartBase, curRestart, geomInterval)
			s.backtrackTo(len(assumptions))
			pub.event(s, "restart", nextRestart-s.stats.Conflicts)
			rsp := lim.Span.Child("sat.restart")
			rsp.SetAttrs(
				telemetry.Int("conflicts", s.stats.Conflicts-conflictsAtStart),
				telemetry.Int("interval", nextRestart-s.stats.Conflicts))
			rsp.End()
		}

		// Reduce learnt DB? Watch re-attachment is only sound at level 0,
		// so force a full restart first.
		if int64(len(s.learnts)) > learntLimit {
			s.backtrackTo(0)
			ssp := lim.Span.Child("sat.simplify")
			before := int64(len(s.learnts))
			s.reduceDB()
			pub.event(s, "simplify", before-int64(len(s.learnts)))
			ssp.SetAttrs(
				telemetry.Int("learnt_before", before),
				telemetry.Int("learnt_after", int64(len(s.learnts))))
			ssp.End()
			learntLimit = int64(float64(learntLimit) * s.opts.LearntGrowth)
		}

		// Pick the next decision: assumptions first.
		var next cnf.Lit = cnf.LitUndef
		for s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				// Already satisfied; open an empty decision level.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				return Unsat // conflicting assumptions
			}
			next = a
			break
		}
		if next == cnf.LitUndef {
			if s.opts.RandFreq > 0 && s.randChance() {
				if v := s.randomUnassigned(); v != 0 {
					next = cnf.MkLit(v, !s.phase[v])
				}
			}
			if next == cnf.LitUndef {
				for len(s.heap) > 0 {
					v := s.heapPop()
					if s.assign[v] == lUndef {
						next = cnf.MkLit(v, !s.phase[v])
						break
					}
				}
			}
			if next == cnf.LitUndef {
				return Sat // all variables assigned
			}
			s.stats.Decisions++
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(next, nil)
	}
}

// Value returns the model value of v after a Sat result.
func (s *Solver) Value(v cnf.Var) bool { return s.assign[v] == lTrue }

// LitTrue reports whether literal l is true in the model.
func (s *Solver) LitTrue(l cnf.Lit) bool { return s.litValue(l) == lTrue }

// Stats returns search statistics, with the current learnt-DB footprint
// estimate folded in.
func (s *Solver) Stats() Stats {
	st := s.stats
	st.LearntBytes = s.learntBytes
	return st
}

// StopReason reports why the last SolveLimited returned Unknown
// (StopNone after a conclusive answer).
func (s *Solver) StopReason() StopReason { return s.stopReason }

// LearntBytes returns the estimated learnt-clause database footprint.
func (s *Solver) LearntBytes() int64 { return s.learntBytes }

// NumClauses returns the problem clause count (excluding learnt clauses).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumVarsAllocated returns the number of variables.
func (s *Solver) NumVarsAllocated() int { return s.numVars }

// SetDebug toggles expensive internal invariant checking (test use only).
func (s *Solver) SetDebug(on bool) { s.debug = on }

// dumpState prints trail diagnostics when an internal invariant breaks.
func (s *Solver) dumpState(p cnf.Lit, counter int) {
	fmt.Fprintf(os.Stderr, "ANALYZE BUG: p=%v var=%d level=%d dl=%d counter=%d trailLen=%d\n",
		p, p.Var(), s.level[p.Var()], s.decisionLevel(), counter, len(s.trail))
	for i := len(s.trail) - 1; i >= 0 && i > len(s.trail)-30; i-- {
		l := s.trail[i]
		fmt.Fprintf(os.Stderr, "  trail[%d] = %v lvl=%d seen=%v reason=%p\n", i, l, s.level[l.Var()], s.seen[l.Var()], s.reason[l.Var()])
	}
}

// checkInvariants (debug only) verifies that no clause is fully false or
// unnoticed-unit after propagation reached fixpoint.
func (s *Solver) checkInvariants(where string) {
	all := append([]*clause{}, s.clauses...)
	all = append(all, s.learnts...)
	for _, c := range all {
		nFalse, nTrue, nUndef := 0, 0, 0
		for _, l := range c.lits {
			switch s.litValue(l) {
			case lFalse:
				nFalse++
			case lTrue:
				nTrue++
			default:
				nUndef++
			}
		}
		if nTrue == 0 && nUndef == 0 {
			fmt.Fprintf(os.Stderr, "INVARIANT[%s]: clause %v fully false, dl=%d\n", where, c.lits, s.decisionLevel())
			panic("missed conflict")
		}
		if nTrue == 0 && nUndef == 1 {
			fmt.Fprintf(os.Stderr, "INVARIANT[%s]: clause %v unit undetected, dl=%d\n", where, c.lits, s.decisionLevel())
			panic("missed unit")
		}
	}
}
