package sat

import (
	"math"
	"sync/atomic"
)

// Progress is a lock-free live view of in-flight search effort. The CDCL
// loop owns its Stats fields exclusively (they are plain int64s on the
// hot path); on the same amortized cadence as the budget checks it
// publishes *deltas* into the attached Progress with atomic adds. Readers
// (the service's /v1/jobs/{id}/progress endpoint) call Snapshot from any
// goroutine without synchronizing with the solver.
//
// Delta publication is what makes one Progress shareable across the
// concurrent solvers of a portfolio race and the sequential checks of an
// fperf synthesis alike: each solver adds what it did since its last
// publish, so every counter is the monotonically increasing sum of all
// search effort spent on the job so far.
type Progress struct {
	conflicts    atomic.Int64
	decisions    atomic.Int64
	propagations atomic.Int64
	restarts     atomic.Int64
	learnt       atomic.Int64
	learntBytes  atomic.Int64  // gauge: deltas may be negative (DB reduction)
	solves       atomic.Int64  // SolveLimited calls that attached this Progress
	running      atomic.Int64  // solvers currently publishing
	budget       atomic.Uint64 // Float64bits of the max budget fraction seen

	// rec, when set, receives the same publish-cadence feed as the
	// counters above, plus restart/simplify/solve event marks, and
	// accumulates them into a SearchReport (see report.go). Attaching a
	// recorder costs nothing on the hot path: solvers check the pointer
	// only inside publish, which is already amortized.
	rec atomic.Pointer[SearchRecorder]
}

// SetRecorder attaches (or, with nil, detaches) a SearchRecorder. Safe
// to call concurrently with live solving; solvers pick the new recorder
// up at their next publish. Nil-safe on p.
func (p *Progress) SetRecorder(r *SearchRecorder) {
	if p == nil {
		return
	}
	p.rec.Store(r)
}

// Recorder returns the attached SearchRecorder, if any. Nil-safe.
func (p *Progress) Recorder() *SearchRecorder {
	if p == nil {
		return nil
	}
	return p.rec.Load()
}

// ProgressSnapshot is a point-in-time copy of a Progress, JSON-friendly.
type ProgressSnapshot struct {
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	Learnt       int64 `json:"learnt_clauses"`
	LearntBytes  int64 `json:"learnt_bytes"`
	// Solves counts SolveLimited calls so far (fperf runs many per job;
	// a portfolio race runs one per config).
	Solves int64 `json:"solves"`
	// Running is how many solvers are mid-search right now.
	Running int64 `json:"running"`
	// BudgetFraction is the largest fraction of any configured resource
	// budget (conflicts, propagations, learnt bytes, deadline) any solver
	// has consumed, in [0, 1]; 0 when no budget is set.
	BudgetFraction float64 `json:"budget_fraction"`
}

// Snapshot reads the current progress atomically (field-by-field; the
// counters are independently monotonic). Nil-safe.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Conflicts:      p.conflicts.Load(),
		Decisions:      p.decisions.Load(),
		Propagations:   p.propagations.Load(),
		Restarts:       p.restarts.Load(),
		Learnt:         p.learnt.Load(),
		LearntBytes:    p.learntBytes.Load(),
		Solves:         p.solves.Load(),
		Running:        p.running.Load(),
		BudgetFraction: math.Float64frombits(p.budget.Load()),
	}
}

// add publishes one solver's effort delta.
func (p *Progress) add(d Stats) {
	p.conflicts.Add(d.Conflicts)
	p.decisions.Add(d.Decisions)
	p.propagations.Add(d.Propagations)
	p.restarts.Add(d.Restarts)
	p.learnt.Add(d.Learnt)
	p.learntBytes.Add(d.LearntBytes)
}

// observeBudget raises the published budget fraction to frac if larger
// (CAS loop; fractions only move up within a job).
func (p *Progress) observeBudget(frac float64) {
	if frac > 1 {
		frac = 1
	}
	for {
		old := p.budget.Load()
		if math.Float64frombits(old) >= frac {
			return
		}
		if p.budget.CompareAndSwap(old, math.Float64bits(frac)) {
			return
		}
	}
}

// progressPub tracks one SolveLimited call's last-published counters so
// repeated publishes add only the delta since the previous one.
type progressPub struct {
	p       *Progress
	name    string // Options.Name of the publishing solver (portfolio label)
	last    Stats
	lastLBD [lbdOverflowBucket + 1]int64
}

// publish pushes the effort accumulated since the previous publish, plus
// the current budget fraction, and forwards the same delta to the
// attached SearchRecorder (if any) together with the solver's current
// decision depth and the delta of its LBD histogram.
func (pp *progressPub) publish(s *Solver, frac float64) {
	if pp.p == nil {
		return
	}
	cur := s.stats
	cur.LearntBytes = s.learntBytes
	d := Stats{
		Conflicts:    cur.Conflicts - pp.last.Conflicts,
		Decisions:    cur.Decisions - pp.last.Decisions,
		Propagations: cur.Propagations - pp.last.Propagations,
		Restarts:     cur.Restarts - pp.last.Restarts,
		Learnt:       cur.Learnt - pp.last.Learnt,
		LearntBytes:  cur.LearntBytes - pp.last.LearntBytes,
	}
	pp.p.add(d)
	pp.last = cur
	pp.p.observeBudget(frac)
	if rec := pp.p.Recorder(); rec != nil {
		var lbdDelta [lbdOverflowBucket + 1]int64
		for i, n := range s.lbdHist {
			lbdDelta[i] = n - pp.lastLBD[i]
			pp.lastLBD[i] = n
		}
		rec.observe(pp.name, d, pp.p.Snapshot(), s.decisionLevel(), &lbdDelta)
	}
}

// event forwards a discrete search event (restart, simplify, solve
// boundary) to the attached recorder. Conflicts is reported job-wide:
// the published total plus this solver's not-yet-published delta.
func (pp *progressPub) event(s *Solver, kind string, detail int64) {
	if pp.p == nil {
		return
	}
	if rec := pp.p.Recorder(); rec != nil {
		conflicts := pp.p.conflicts.Load() + (s.stats.Conflicts - pp.last.Conflicts)
		rec.event(kind, pp.name, conflicts, detail)
	}
}
