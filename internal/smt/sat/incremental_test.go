package sat

import (
	"math/rand"
	"testing"

	"buffy/internal/smt/cnf"
)

// randomInstance builds a random 3-SAT instance (fixed seed, deterministic)
// over n vars, reserving the last var as an assumption selector.
func randomInstance(s *Solver, rng *rand.Rand, n, clauses int) {
	newVars(s, n)
	for i := 0; i < clauses; i++ {
		a := rng.Intn(n-1) + 1
		b := rng.Intn(n-1) + 1
		c := rng.Intn(n-1) + 1
		s.AddClause(lit(a, rng.Intn(2) == 0), lit(b, rng.Intn(2) == 0), lit(c, rng.Intn(2) == 0))
	}
}

// TestLearntClausesSurviveAssumptionSolves: learnt clauses accumulated
// under one set of assumptions persist into later SolveLimited calls —
// the property warm sessions are built on. Learnt clauses are implied by
// the problem clauses alone (assumptions enter as pseudo-decisions, never
// as antecedents at level 0), so retention is sound whatever is assumed
// next; this test checks both retention and continued correctness.
func TestLearntClausesSurviveAssumptionSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Ratio ~3.8: satisfiable but conflict-rich, away from the 4.26
	// phase transition (these run many times against fresh references).
	const n, cls = 40, 152
	s := New()
	randomInstance(s, rng, n, cls)

	// Solve under a series of assumption sets, tracking learnt growth.
	var prevLearnt int64
	for round := 0; round < 6; round++ {
		assume := []cnf.Lit{
			lit(1+round%n, round%2 == 0),
			lit(1+(round*7)%n, round%3 == 0),
		}
		got := s.SolveLimited(Limits{}, assume...)

		// Reference: a fresh solver over the same problem with the
		// assumptions added as unit clauses must agree.
		ref := New()
		rng2 := rand.New(rand.NewSource(7))
		randomInstance(ref, rng2, n, cls)
		ok := true
		for _, a := range assume {
			if !ref.AddClause(a) {
				ok = false
				break
			}
		}
		want := Unsat
		if ok {
			want = ref.Solve()
		}
		if got != want {
			t.Fatalf("round %d: incremental %v, fresh %v", round, got, want)
		}
		if l := s.Stats().Learnt; l < prevLearnt {
			t.Fatalf("round %d: learnt count went backwards (%d -> %d)", round, prevLearnt, l)
		} else {
			prevLearnt = l
		}
	}
	if prevLearnt == 0 {
		t.Fatal("instance never produced a learnt clause; test is vacuous")
	}
}

// TestAssumptionSafeRestarts: with an aggressive restart schedule the
// search restarts many times mid-solve; restarts must never pop the
// assumption levels (the s.decisionLevel() > len(assumptions) guard) and
// verdicts must stay correct across repeated calls on one solver.
func TestAssumptionSafeRestarts(t *testing.T) {
	// Geometric restarts from a tiny base: restart pressure throughout,
	// without crippling the search into thrashing.
	opts := Options{GeomRestarts: true, RestartBase: 4, RestartGrowth: 1.1}
	rng := rand.New(rand.NewSource(11))
	const n, cls = 36, 137
	s := NewWithOptions(opts)
	randomInstance(s, rng, n, cls)

	for round := 0; round < 8; round++ {
		assume := []cnf.Lit{
			lit(1+round%n, round%2 == 1),
			lit(1+(round*3)%n, round%2 == 0),
			lit(1+(round*13)%n, round%4 < 2),
		}
		got := s.SolveLimited(Limits{}, assume...)
		ref := New()
		rng2 := rand.New(rand.NewSource(11))
		randomInstance(ref, rng2, n, cls)
		ok := true
		for _, a := range assume {
			if !ref.AddClause(a) {
				ok = false
				break
			}
		}
		want := Unsat
		if ok {
			want = ref.Solve()
		}
		if got != want {
			t.Fatalf("round %d: incremental-with-restarts %v, fresh %v", round, got, want)
		}
		if got == Sat {
			// The model must satisfy the assumptions.
			for _, a := range assume {
				if !s.LitTrue(a) {
					t.Fatalf("round %d: assumption %v not satisfied by model", round, a)
				}
			}
		}
	}
	if s.Stats().Restarts == 0 {
		t.Fatal("restart schedule never fired; test is vacuous")
	}
}

// TestAssumptionsDoNotStick: an assumption from one call must not
// constrain the next call. Solve x1 assumed false (Sat), then x1 assumed
// true (Sat), then no assumptions — x1 must be free again and the
// formula still Sat.
func TestAssumptionsDoNotStick(t *testing.T) {
	s := New()
	newVars(s, 3)
	// (x1 | x2) & (!x1 | x3)
	s.AddClause(lit(1, false), lit(2, false))
	s.AddClause(lit(1, true), lit(3, false))
	if got := s.SolveLimited(Limits{}, lit(1, true)); got != Sat {
		t.Fatalf("assume !x1: %v, want sat", got)
	}
	if s.Value(1) {
		t.Fatal("model violates assumption !x1")
	}
	if got := s.SolveLimited(Limits{}, lit(1, false)); got != Sat {
		t.Fatalf("assume x1: %v, want sat", got)
	}
	if !s.Value(1) {
		t.Fatal("model violates assumption x1")
	}
	if got := s.SolveLimited(Limits{}); got != Sat {
		t.Fatalf("no assumptions: %v, want sat", got)
	}
}

// TestConflictingAssumptionsRecoverable: directly conflicting assumptions
// yield Unsat for that call only; the solver stays usable and the same
// formula is Sat again without them (the level-0 ok flag must not trip).
func TestConflictingAssumptionsRecoverable(t *testing.T) {
	s := New()
	newVars(s, 2)
	s.AddClause(lit(1, false), lit(2, false))
	if got := s.SolveLimited(Limits{}, lit(1, false), lit(1, true)); got != Unsat {
		t.Fatalf("conflicting assumptions: %v, want unsat", got)
	}
	if got := s.SolveLimited(Limits{}); got != Sat {
		t.Fatalf("after conflicting assumptions: %v, want sat", got)
	}
}

// TestReduceDBKeepsAssumptionSoundness: force learnt-DB reductions with a
// tiny budget while solving under assumptions; answers must stay correct.
// reduceDB backtracks to level 0 (past the assumption levels), so the
// solve loop must re-establish the assumption prefix afterwards.
func TestReduceDBKeepsAssumptionSoundness(t *testing.T) {
	// A tiny learnt-DB limit forces constant reductions. (withDefaults
	// clamps LearntFrac/Growth upward from zero, so the additive floor
	// is the lever: limit ≈ 170/3 + 4, hit almost immediately.)
	opts := Options{LearntBase: 4, LearntFrac: 0.01, LearntGrowth: 1.001}
	rng := rand.New(rand.NewSource(3))
	const n, cls = 34, 129
	s := NewWithOptions(opts)
	randomInstance(s, rng, n, cls)
	for round := 0; round < 6; round++ {
		assume := []cnf.Lit{lit(1+round*5%n, round%2 == 0)}
		got := s.SolveLimited(Limits{}, assume...)
		ref := New()
		rng2 := rand.New(rand.NewSource(3))
		randomInstance(ref, rng2, n, cls)
		want := Unsat
		if ref.AddClause(assume[0]) {
			want = ref.Solve()
		}
		if got != want {
			t.Fatalf("round %d: %v, want %v", round, got, want)
		}
	}
}
