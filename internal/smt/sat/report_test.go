package sat

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRecorderThroughSolve drives the recorder the way the service
// does — attached to a Progress that a real SolveLimited publishes into
// — and checks the report carries a timeline, restart marks, both
// distributions, and totals that match the solver's own stats.
func TestRecorderThroughSolve(t *testing.T) {
	s := New()
	s.opts.Name = "unit-cfg"
	loadHardRandom3SAT(s, 300, 1278, 0x2545f4914f6cdd1d)
	p := &Progress{}
	rec := NewSearchRecorder()
	p.SetRecorder(rec)

	if got := s.SolveLimited(Limits{MaxConflicts: 3000, Progress: p}); got != Unknown {
		t.Fatalf("status = %v, want Unknown (budget)", got)
	}

	rep := rec.Report()
	if rep == nil {
		t.Fatal("nil report from a live recorder")
	}
	if len(rep.Samples) < 2 {
		t.Fatalf("timeline has %d samples, want >= 2 (3000 conflicts crosses the publish cadence many times)", len(rep.Samples))
	}
	if rep.Totals.Conflicts != s.Stats().Conflicts {
		t.Errorf("report conflicts %d != solver stats %d", rep.Totals.Conflicts, s.Stats().Conflicts)
	}
	if rep.Totals.Solves != 1 {
		t.Errorf("solves = %d, want 1", rep.Totals.Solves)
	}
	kinds := map[string]int{}
	for _, e := range rep.Events {
		kinds[e.Kind]++
	}
	if kinds["solve_start"] != 1 || kinds["solve_end"] != 1 {
		t.Errorf("solve boundary events = %v, want one of each", kinds)
	}
	if kinds["restart"] == 0 {
		t.Errorf("no restart marks after %d restarts", s.Stats().Restarts)
	}
	if rep.Depth.Count == 0 {
		t.Error("decision-depth distribution is empty")
	}
	if rep.LBD.Count == 0 {
		t.Error("LBD distribution is empty")
	}
	if int64(kinds["restart"]) != s.Stats().Restarts {
		t.Errorf("restart marks %d != solver restarts %d", kinds["restart"], s.Stats().Restarts)
	}
	if len(rep.Configs) != 1 || rep.Configs[0].Name != "unit-cfg" {
		t.Errorf("configs = %+v, want the single named config", rep.Configs)
	}
	// Samples are monotone in time and cumulative counters.
	for i := 1; i < len(rep.Samples); i++ {
		if rep.Samples[i].Conflicts < rep.Samples[i-1].Conflicts {
			t.Fatalf("sample %d: conflicts went backwards", i)
		}
		if rep.Samples[i].AtMS < rep.Samples[i-1].AtMS {
			t.Fatalf("sample %d: time went backwards", i)
		}
	}
}

// TestRecorderDecimation fills the timeline past its bound and checks
// the shape-preserving coarsening: never above maxSamples, stride
// doubling, first sample retained.
func TestRecorderDecimation(t *testing.T) {
	rec := NewSearchRecorder()
	const pubs = maxSamples*4 + 37
	for i := 0; i < pubs; i++ {
		rec.observe("", Stats{Conflicts: 1}, ProgressSnapshot{Conflicts: int64(i + 1)}, i%40, nil)
	}
	rec.mu.Lock()
	n, stride := len(rec.samples), rec.stride
	first := rec.samples[0]
	rec.mu.Unlock()
	if n > maxSamples {
		t.Fatalf("timeline grew to %d, bound is %d", n, maxSamples)
	}
	if stride < 4 {
		t.Errorf("stride = %d after 4x overflow, want >= 4", stride)
	}
	if first.Conflicts != 1 {
		t.Errorf("decimation lost the first sample (conflicts=%d)", first.Conflicts)
	}
	rep := rec.Report()
	if rep.Totals.Conflicts != pubs {
		t.Errorf("totals lost effort under decimation: %d, want %d", rep.Totals.Conflicts, pubs)
	}
	if rep.SampleStride != stride {
		t.Errorf("report stride %d != recorder stride %d", rep.SampleStride, stride)
	}
}

// TestRecorderEventCap: overflow marks are counted, not kept.
func TestRecorderEventCap(t *testing.T) {
	rec := NewSearchRecorder()
	for i := 0; i < maxEvents+25; i++ {
		rec.event("restart", "", int64(i), 0)
	}
	rep := rec.Report()
	if len(rep.Events) != maxEvents {
		t.Errorf("kept %d events, bound is %d", len(rep.Events), maxEvents)
	}
	if rep.EventsDropped != 25 {
		t.Errorf("dropped = %d, want 25", rep.EventsDropped)
	}
}

// TestRecorderConfigAttribution: effort lands on the config that
// published it, and solve_start counts per-config solves.
func TestRecorderConfigAttribution(t *testing.T) {
	rec := NewSearchRecorder()
	rec.event("solve_start", "geom", 0, 0)
	rec.event("solve_start", "luby", 0, 0)
	rec.observe("geom", Stats{Conflicts: 100}, ProgressSnapshot{Conflicts: 100}, 3, nil)
	rec.observe("luby", Stats{Conflicts: 40}, ProgressSnapshot{Conflicts: 140}, 5, nil)
	rep := rec.Report()
	if len(rep.Configs) != 2 {
		t.Fatalf("configs = %+v, want 2", rep.Configs)
	}
	// Sorted by conflicts descending.
	if rep.Configs[0].Name != "geom" || rep.Configs[0].Conflicts != 100 || rep.Configs[0].Solves != 1 {
		t.Errorf("config[0] = %+v, want geom/100/1", rep.Configs[0])
	}
	if rep.Totals.Conflicts != 140 || rep.Totals.Solves != 2 {
		t.Errorf("totals = %+v, want 140 conflicts over 2 solves", rep.Totals)
	}
}

// TestReportJSONRoundTrip: the report rides the durable result store,
// so a decode of its encode must be lossless.
func TestReportJSONRoundTrip(t *testing.T) {
	rec := NewSearchRecorder()
	rec.event("solve_start", "cfg", 0, 0)
	rec.observe("cfg", Stats{Conflicts: 64, Learnt: 10, LearntBytes: 640},
		ProgressSnapshot{Conflicts: 64, Learnt: 10, LearntBytes: 640, BudgetFraction: 0.25}, 7, nil)
	rec.event("restart", "cfg", 64, 128)
	rep := rec.Report()
	rep.Winner = "cfg"

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back SearchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Errorf("report does not JSON round-trip:\n first: %s\nsecond: %s", data, again)
	}
}

// TestReportRender smoke-tests the terminal rendering on a real solve:
// the sparkline timeline, event counts and histograms must all appear.
func TestReportRender(t *testing.T) {
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0xdeadbeef12345)
	p := &Progress{}
	rec := NewSearchRecorder()
	p.SetRecorder(rec)
	s.SolveLimited(Limits{MaxConflicts: 3000, Progress: p})

	out := rec.Report().Render()
	for _, want := range []string{"search:", "timeline", "events:", "decision depth", "LBD"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var nilRep *SearchReport
	if nilRep.Render() != "" {
		t.Error("nil report renders non-empty")
	}
}

// TestRecorderNilSafe: solvers publish through nil-guards; a Progress
// without a recorder and a nil recorder must both be free.
func TestRecorderNilSafe(t *testing.T) {
	var rec *SearchRecorder
	rec.observe("", Stats{}, ProgressSnapshot{}, 0, nil)
	rec.event("restart", "", 0, 0)
	if rec.Report() != nil {
		t.Error("nil recorder produced a report")
	}
	p := &Progress{}
	if p.Recorder() != nil {
		t.Error("fresh Progress has a recorder attached")
	}
	var np *Progress
	np.SetRecorder(NewSearchRecorder()) // must not panic
}
