package sat

import (
	"math/rand"
	"testing"

	"buffy/internal/smt/cnf"
)

func lit(v int, neg bool) cnf.Lit { return cnf.MkLit(cnf.Var(v), neg) }

func newVars(s *Solver, n int) {
	for i := 0; i < n; i++ {
		s.NewVar()
	}
}

func TestEmptyIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: got %v, want sat", got)
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	newVars(s, 2)
	s.AddClause(lit(1, false))
	s.AddClause(lit(2, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if !s.Value(1) {
		t.Error("x1 should be true")
	}
	if s.Value(2) {
		t.Error("x2 should be false")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	newVars(s, 1)
	s.AddClause(lit(1, false))
	if ok := s.AddClause(lit(1, true)); ok {
		t.Fatal("adding contradictory unit should report conflict")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x1, x1->x2, x2->x3, ..., x(n-1)->xn, and finally ¬xn: unsat.
	const n = 50
	s := New()
	newVars(s, n)
	s.AddClause(lit(1, false))
	for i := 1; i < n; i++ {
		s.AddClause(lit(i, true), lit(i+1, false))
	}
	s.AddClause(lit(n, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestXorChainSat(t *testing.T) {
	// x1 xor x2 = 1, x2 xor x3 = 1, x1 = true -> forced alternating.
	s := New()
	newVars(s, 3)
	addXor := func(a, b int) {
		s.AddClause(lit(a, false), lit(b, false))
		s.AddClause(lit(a, true), lit(b, true))
	}
	addXor(1, 2)
	addXor(2, 3)
	s.AddClause(lit(1, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if !s.Value(1) || s.Value(2) || !s.Value(3) {
		t.Errorf("model = %v %v %v, want true false true", s.Value(1), s.Value(2), s.Value(3))
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — classically
// hard unsat instances that exercise clause learning.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := func(p, h int) cnf.Var { return cnf.Var(p*holes + h + 1) }
	newVars(s, pigeons*holes)
	// Each pigeon in some hole.
	for p := 0; p < pigeons; p++ {
		c := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = cnf.PosLit(v(p, h))
		}
		s.AddClause(c...)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h)))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want sat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	newVars(s, 3)
	// (x1 | x2) & (!x1 | x3)
	s.AddClause(lit(1, false), lit(2, false))
	s.AddClause(lit(1, true), lit(3, false))

	if got := s.Solve(lit(1, false), lit(3, true)); got != Unsat {
		t.Fatalf("assuming x1, !x3: got %v, want unsat", got)
	}
	// Solver must remain usable after an unsat-under-assumptions result.
	if got := s.Solve(lit(1, false)); got != Sat {
		t.Fatalf("assuming x1: got %v, want sat", got)
	}
	if !s.Value(1) || !s.Value(3) {
		t.Error("model should satisfy x1 and x3")
	}
	if got := s.Solve(lit(1, true), lit(2, true)); got != Unsat {
		t.Fatalf("assuming !x1, !x2: got %v, want unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: got %v, want sat", got)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	newVars(s, 2)
	s.AddClause(lit(1, false), lit(2, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	s.AddClause(lit(1, true))
	s.AddClause(lit(2, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after narrowing: got %v, want unsat", got)
	}
}

func TestConflictLimit(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to exceed a tiny conflict budget
	got := s.SolveLimited(Limits{MaxConflicts: 10})
	if got == Sat {
		t.Fatalf("PHP(9,8) cannot be sat; got %v", got)
	}
}

// bruteForce decides satisfiability of f by enumeration (n <= 20).
func bruteForce(f *cnf.Formula) (bool, []bool) {
	n := f.NumVars()
	for m := 0; m < 1<<uint(n); m++ {
		val := func(l cnf.Lit) bool {
			bit := m>>(uint(l.Var())-1)&1 == 1
			return bit != l.Sign()
		}
		ok := true
		for _, c := range f.Clauses {
			sat := false
			for _, l := range c {
				if val(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			model := make([]bool, n+1)
			for v := 1; v <= n; v++ {
				model[v] = m>>(uint(v)-1)&1 == 1
			}
			return true, model
		}
	}
	return false, nil
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		nv := 3 + rng.Intn(8)
		nc := 1 + rng.Intn(5*nv)
		f := cnf.New()
		for i := 0; i < nv; i++ {
			f.NewVar()
		}
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(3)
			c := make([]cnf.Lit, k)
			for j := range c {
				c[j] = cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0)
			}
			f.AddClause(c...)
		}
		want, _ := bruteForce(f)

		s := New()
		loadOK := s.LoadFormula(f)
		got := Unsat
		if loadOK {
			got = s.Solve()
		}
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce sat=%v\n%s", iter, got, want, f.Dimacs())
		}
		if got == Sat {
			// Verify the model satisfies every clause.
			for ci, c := range f.Clauses {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: clause %d %v unsatisfied by model", iter, ci, c)
				}
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 4)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 {
		t.Error("expected some conflicts on PHP(5,4)")
	}
	if st.Decisions == 0 {
		t.Error("expected some decisions")
	}
}

func BenchmarkPigeonhole8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 9, 8)
		if got := s.Solve(); got != Unsat {
			b.Fatalf("got %v", got)
		}
	}
}

func BenchmarkRandom3SAT200(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	f := cnf.New()
	const nv = 200
	for i := 0; i < nv; i++ {
		f.NewVar()
	}
	for i := 0; i < int(4.0*nv); i++ {
		c := make([]cnf.Lit, 3)
		for j := range c {
			c[j] = cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0)
		}
		f.AddClause(c...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		s.LoadFormula(f)
		s.Solve()
	}
}

// Random instances with the expensive internal invariant checker enabled:
// any missed propagation or late conflict panics.
func TestRandomWithInvariantChecking(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 60; iter++ {
		nv := 10 + rng.Intn(30)
		nc := int(3.5 * float64(nv))
		s := New()
		s.SetDebug(true)
		newVars(s, nv)
		ok := true
		for i := 0; i < nc && ok; i++ {
			c := make([]cnf.Lit, 3)
			for j := range c {
				c[j] = cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0)
			}
			ok = s.AddClause(c...)
		}
		if !ok {
			continue
		}
		s.Solve() // must not panic; verdict checked by the brute-force test
	}
}
