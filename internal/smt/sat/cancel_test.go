package sat

import (
	"testing"
	"time"
)

// TestCancelAbortsSearch pins the cooperative-cancellation contract: a
// hard instance (PHP(10,9), far beyond what this CDCL solves quickly)
// returns Unknown within a small bound after the cancel channel closes.
func TestCancelAbortsSearch(t *testing.T) {
	s := New()
	pigeonhole(s, 10, 9)

	cancel := make(chan struct{})
	done := make(chan Status, 1)
	go func() { done <- s.SolveLimited(Limits{Cancel: cancel}) }()

	time.Sleep(100 * time.Millisecond) // let the search dig in
	cancelAt := time.Now()
	close(cancel)
	select {
	case got := <-done:
		if got != Unknown {
			t.Fatalf("cancelled solve: got %v, want unknown", got)
		}
		// The loop polls every 64 search steps; unwinding is near-instant.
		if elapsed := time.Since(cancelAt); elapsed > 2*time.Second {
			t.Errorf("solver took %v to honour cancel", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solver ignored cancellation")
	}
}

// TestCancelledBeforeSolve returns Unknown immediately.
func TestCancelledBeforeSolve(t *testing.T) {
	s := New()
	pigeonhole(s, 10, 9)
	cancel := make(chan struct{})
	close(cancel)
	if got := s.SolveLimited(Limits{Cancel: cancel}); got != Unknown {
		t.Fatalf("pre-cancelled solve: got %v, want unknown", got)
	}
}

// TestSolveAfterCancel pins that a cancelled solver stays usable: the
// service reuses nothing across jobs, but incremental users (Houdini,
// k-induction) re-Solve after an abort.
func TestSolveAfterCancel(t *testing.T) {
	s := New()
	newVars(s, 2)
	s.AddClause(lit(1, false), lit(2, false))
	cancel := make(chan struct{})
	close(cancel)
	if got := s.SolveLimited(Limits{Cancel: cancel}); got != Unknown {
		t.Fatalf("cancelled: got %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("re-solve after cancel: got %v, want sat", got)
	}
}

// TestNilCancelIsUnlimited: the zero Limits value must behave as before.
func TestNilCancelIsUnlimited(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.SolveLimited(Limits{}); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want sat", got)
	}
}
