package sat

import (
	"sync"
	"testing"
	"time"

	"buffy/internal/telemetry"
)

// TestProgressPublishedDuringSolve pins the live-progress contract: while
// SolveLimited runs, a concurrent poller sees monotonically nondecreasing
// conflict counts, and the final snapshot accounts for all search effort.
// Run under -race in CI — this is the satellite fix for the data race a
// service poller reading solver Stats directly would hit.
func TestProgressPublishedDuringSolve(t *testing.T) {
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0x2545f4914f6cdd1d)
	p := &Progress{}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snaps []ProgressSnapshot
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snaps = append(snaps, p.Snapshot())
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	got := s.SolveLimited(Limits{MaxConflicts: 3000, Progress: p})
	close(stop)
	wg.Wait()
	if got != Unknown {
		t.Fatalf("status = %v, want Unknown (budget)", got)
	}

	last := int64(-1)
	for i, snap := range snaps {
		if snap.Conflicts < last {
			t.Fatalf("snapshot %d: conflicts went backwards (%d -> %d)", i, last, snap.Conflicts)
		}
		last = snap.Conflicts
	}
	final := p.Snapshot()
	if final.Conflicts != s.Stats().Conflicts {
		t.Errorf("final conflicts %d != solver stats %d", final.Conflicts, s.Stats().Conflicts)
	}
	if final.Solves != 1 || final.Running != 0 {
		t.Errorf("solves=%d running=%d, want 1/0", final.Solves, final.Running)
	}
	if final.BudgetFraction < 0.9 {
		t.Errorf("budget fraction %v after exhausting the conflict budget, want >= 0.9", final.BudgetFraction)
	}
}

// TestProgressSharedAcrossSolves pins delta publication: sequential
// solves attached to one Progress (the fperf pattern) accumulate, never
// reset — the counters are the job's total effort.
func TestProgressSharedAcrossSolves(t *testing.T) {
	p := &Progress{}
	var total int64
	for i := 0; i < 3; i++ {
		s := New()
		loadHardRandom3SAT(s, 200, 852, uint64(0x9e3779b9+i))
		s.SolveLimited(Limits{MaxConflicts: 200, Progress: p})
		total += s.Stats().Conflicts
	}
	snap := p.Snapshot()
	if snap.Conflicts != total {
		t.Errorf("aggregated conflicts %d, want %d (sum over solves)", snap.Conflicts, total)
	}
	if snap.Solves != 3 {
		t.Errorf("solves = %d, want 3", snap.Solves)
	}
}

// TestProgressConcurrentSolvers pins the portfolio pattern: concurrent
// solvers publishing into one Progress race-free, with the final counts
// summing every solver's effort.
func TestProgressConcurrentSolvers(t *testing.T) {
	p := &Progress{}
	const n = 4
	totals := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := New()
			loadHardRandom3SAT(s, 200, 852, uint64(0x1234567+i))
			s.SolveLimited(Limits{MaxConflicts: 300, Progress: p})
			totals[i] = s.Stats().Conflicts
		}(i)
	}
	wg.Wait()
	var want int64
	for _, c := range totals {
		want += c
	}
	snap := p.Snapshot()
	if snap.Conflicts != want {
		t.Errorf("aggregated conflicts %d, want %d", snap.Conflicts, want)
	}
	if snap.Running != 0 {
		t.Errorf("running = %d after all solvers returned", snap.Running)
	}
}

// TestNilProgressIsFree: SolveLimited without a Progress must not panic
// and must not publish anywhere.
func TestNilProgressIsFree(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	if got := s.SolveLimited(Limits{}); got != Unsat {
		t.Fatalf("status = %v, want Unsat", got)
	}
	var p *Progress
	if snap := p.Snapshot(); snap != (ProgressSnapshot{}) {
		t.Errorf("nil Progress snapshot = %+v, want zero", snap)
	}
}

// TestSearchSpansRecorded pins the Limits.Span plumbing: a busy solve
// with a restart-heavy schedule records sat.restart (and, with a tight
// learnt limit, sat.simplify) child spans.
func TestSearchSpansRecorded(t *testing.T) {
	tr := telemetry.NewTraceN("sat", 4096)
	root := tr.StartSpan(nil, "search")
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0xdeadbeef12345)
	s.SolveLimited(Limits{MaxConflicts: 2000, Span: root})
	root.End()
	d := tr.Durations()
	if _, ok := d["sat.restart"]; !ok {
		t.Errorf("no sat.restart spans recorded in %v", d)
	}
}
