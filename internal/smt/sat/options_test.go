package sat

import (
	"math/rand"
	"testing"

	"buffy/internal/smt/cnf"
)

// diversifiedConfigs is a small set of heuristic configurations spanning
// every exposed knob; correctness tests run each of them.
func diversifiedConfigs() map[string]Options {
	return map[string]Options{
		"classic":      {},
		"pos-phase":    {InitPhase: true},
		"geom-fast":    {GeomRestarts: true, RestartBase: 10, RestartGrowth: 1.2, VarDecay: 0.90},
		"slow-restart": {RestartBase: 1000, VarDecay: 0.99},
		"random":       {RandSeed: 0x9E3779B97F4A7C15, RandFreq: 0.2},
		"tiny-db":      {LearntFrac: 0.05, LearntBase: 20, LearntGrowth: 1.05, GeomRestarts: true},
	}
}

func TestOptionsZeroValueMatchesClassic(t *testing.T) {
	got := New().Options()
	want := Options{
		RestartBase: 100, RestartGrowth: 1.5,
		VarDecay: 0.95, ClauseDecay: 0.999,
		LearntFrac: 1.0 / 3, LearntBase: 1000, LearntGrowth: 1.1,
	}
	if got != want {
		t.Fatalf("normalized defaults = %+v, want %+v", got, want)
	}
	// RandFreq without a seed must be disabled, not half-random.
	if o := NewWithOptions(Options{RandFreq: 0.5}).Options(); o.RandFreq != 0 {
		t.Fatalf("RandFreq without RandSeed: got %g, want 0", o.RandFreq)
	}
}

func TestOptionsInitPhasePolarity(t *testing.T) {
	// With no constraints every variable is decided at its initial phase.
	for _, phase := range []bool{false, true} {
		s := NewWithOptions(Options{InitPhase: phase})
		newVars(s, 4)
		s.AddClause(lit(1, false), lit(2, false)) // keep the instance non-trivial
		if got := s.Solve(); got != Sat {
			t.Fatalf("got %v, want sat", got)
		}
		// Unconstrained variables follow the configured polarity.
		if s.Value(3) != phase || s.Value(4) != phase {
			t.Errorf("InitPhase=%v: free vars decided as %v/%v", phase, s.Value(3), s.Value(4))
		}
	}
}

// TestOptionsConfigsAgainstBruteForce re-runs the randomized differential
// test under every diversified configuration: heuristics may change the
// search path, never the answer.
func TestOptionsConfigsAgainstBruteForce(t *testing.T) {
	for name, opts := range diversifiedConfigs() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for iter := 0; iter < 120; iter++ {
				nv := 3 + rng.Intn(8)
				nc := 1 + rng.Intn(5*nv)
				f := cnf.New()
				for i := 0; i < nv; i++ {
					f.NewVar()
				}
				for i := 0; i < nc; i++ {
					k := 1 + rng.Intn(3)
					c := make([]cnf.Lit, k)
					for j := range c {
						c[j] = cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0)
					}
					f.AddClause(c...)
				}
				want, _ := bruteForce(f)

				s := NewWithOptions(opts)
				got := Unsat
				if s.LoadFormula(f) {
					got = s.Solve()
				}
				if (got == Sat) != want {
					t.Fatalf("iter %d: solver=%v bruteforce sat=%v\n%s", iter, got, want, f.Dimacs())
				}
			}
		})
	}
}

// TestOptionsGeomRestartsFire pins that the geometric schedule actually
// restarts on a conflict-heavy instance.
func TestOptionsGeomRestartsFire(t *testing.T) {
	s := NewWithOptions(Options{GeomRestarts: true, RestartBase: 5, RestartGrowth: 1.1})
	pigeonhole(s, 8, 7)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(8,7): got %v, want unsat", got)
	}
	if s.Stats().Restarts == 0 {
		t.Error("geometric schedule with base 5 never restarted")
	}
}

// TestOptionsRandomBranchingDeterministic pins that a fixed seed yields a
// bit-identical search: the portfolio's differential cross-check depends
// on per-config reproducibility.
func TestOptionsRandomBranchingDeterministic(t *testing.T) {
	run := func() Stats {
		s := NewWithOptions(Options{RandSeed: 42, RandFreq: 0.3})
		pigeonhole(s, 7, 6)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(7,6): got %v, want unsat", got)
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different searches: %+v vs %+v", a, b)
	}
}

// TestCloneProblemAgrees pins the portfolio's CNF-sharing primitive:
// clones under every diversified configuration must decide exactly the
// problem the parent holds — including clones taken after the parent
// already solved (only the level-0 trail prefix may transfer, never the
// model left on the trail by a Sat result).
func TestCloneProblemAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	configs := diversifiedConfigs()
	for iter := 0; iter < 60; iter++ {
		nv := 3 + rng.Intn(8)
		nc := 1 + rng.Intn(5*nv)
		f := cnf.New()
		for i := 0; i < nv; i++ {
			f.NewVar()
		}
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(3)
			c := make([]cnf.Lit, k)
			for j := range c {
				c[j] = cnf.MkLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0)
			}
			f.AddClause(c...)
		}
		want, _ := bruteForce(f)

		parent := New()
		loaded := parent.LoadFormula(f)
		for name, opts := range configs {
			clone := parent.CloneProblem(opts)
			got := Unsat
			if loaded {
				got = clone.Solve()
			} else if clone.Solve() != Unsat {
				t.Fatalf("iter %d %s: clone of top-level-unsat parent reported sat", iter, name)
			}
			if (got == Sat) != want {
				t.Fatalf("iter %d %s: clone=%v bruteforce sat=%v\n%s", iter, name, got, want, f.Dimacs())
			}
		}
		// Solving the parent leaves its model on the trail; clones taken now
		// must still decide the original problem, not the model.
		if loaded {
			parent.Solve()
			clone := parent.CloneProblem(Options{})
			if got := clone.Solve(); (got == Sat) != want {
				t.Fatalf("iter %d: post-solve clone=%v bruteforce sat=%v\n%s", iter, got, want, f.Dimacs())
			}
			if want && clone.Stats().Decisions == 0 && nv > 1 {
				// Not an error per se, but a clone that inherits the parent's
				// full trail would decide nothing; sanity-check free search.
				continue
			}
		}
	}
}
