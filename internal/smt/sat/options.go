package sat

// Options exposes the CDCL search heuristics that were historically
// hardcoded: the restart schedule, VSIDS decay rates, decision polarity,
// optional randomized branching and the learnt-clause database limits.
// The zero value reproduces the solver's classic configuration exactly,
// so existing callers are unaffected; diversified configurations of these
// knobs are what the portfolio layer races against each other.
type Options struct {
	// Name labels this configuration in telemetry (search reports, spans).
	// It is not a heuristic: it never affects the search and two configs
	// differing only in Name behave identically. The portfolio layer stamps
	// each racing config's name here so per-config effort breakdowns can be
	// attributed without extra plumbing.
	Name string
	// RestartBase is the first restart interval in conflicts (default 100).
	RestartBase int64
	// GeomRestarts selects a geometric restart schedule (interval grows by
	// RestartGrowth after every restart) instead of the default Luby series.
	GeomRestarts bool
	// RestartGrowth is the geometric schedule's multiplier (default 1.5);
	// ignored for Luby restarts.
	RestartGrowth float64
	// VarDecay is the VSIDS activity decay in (0, 1] (default 0.95).
	// Values closer to 1 make branching favor long-term conflict history;
	// smaller values chase recent conflicts more aggressively.
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay in (0, 1]
	// (default 0.999).
	ClauseDecay float64
	// InitPhase is the polarity a variable is first branched to before
	// phase saving takes over (default false, MiniSat's choice).
	InitPhase bool
	// RandSeed seeds the deterministic xorshift generator behind random
	// branching. Zero disables randomness entirely (RandFreq is ignored),
	// keeping the default configuration fully deterministic.
	RandSeed uint64
	// RandFreq is the fraction of decisions taken on a random unassigned
	// variable instead of the VSIDS maximum, in [0, 1]. Requires RandSeed.
	RandFreq float64
	// LearntFrac sizes the initial learnt-DB limit as a fraction of the
	// problem clause count (default 1/3).
	LearntFrac float64
	// LearntBase is the additive floor of the learnt-DB limit
	// (default 1000).
	LearntBase int64
	// LearntGrowth multiplies the learnt-DB limit after each reduction
	// (default 1.1).
	LearntGrowth float64
}

// withDefaults normalizes zero/out-of-range knobs to the classic values.
func (o Options) withDefaults() Options {
	if o.RestartBase <= 0 {
		o.RestartBase = 100
	}
	if o.RestartGrowth <= 1 {
		o.RestartGrowth = 1.5
	}
	if o.VarDecay <= 0 || o.VarDecay > 1 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay <= 0 || o.ClauseDecay > 1 {
		o.ClauseDecay = 0.999
	}
	if o.RandSeed == 0 || o.RandFreq < 0 {
		o.RandFreq = 0
	}
	if o.RandFreq > 1 {
		o.RandFreq = 1
	}
	if o.LearntFrac <= 0 {
		o.LearntFrac = 1.0 / 3
	}
	if o.LearntBase <= 0 {
		o.LearntBase = 1000
	}
	if o.LearntGrowth <= 1 {
		o.LearntGrowth = 1.1
	}
	return o
}
