package sat

import (
	"testing"
	"time"

	"buffy/internal/smt/cnf"
)

// loadHardRandom3SAT fills s with a fixed-seed random 3-SAT instance at
// the satisfiability threshold (clause/variable ratio ~4.26), where CDCL
// search effort explodes: the instance is far beyond small budgets, so
// budget-exhaustion paths can be exercised deterministically without
// multi-second solves.
func loadHardRandom3SAT(s *Solver, vars, clauses int, seed uint64) {
	rnd := seed
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	s.ImportVars(vars)
	for i := 0; i < clauses; i++ {
		var lits []cnf.Lit
		used := map[int]bool{}
		for len(lits) < 3 {
			v := int(next()%uint64(vars)) + 1
			if used[v] {
				continue
			}
			used[v] = true
			lits = append(lits, cnf.MkLit(cnf.Var(v), next()&1 == 0))
		}
		if !s.AddClause(lits...) {
			return
		}
	}
}

// TestBudgetConflictsReturnsUnknownWithinBudget is the acceptance
// scenario: an intractable query with a conflict budget returns Unknown
// with StopReason StopConflicts after roughly the budgeted effort —
// never hanging until a deadline.
func TestBudgetConflictsReturnsUnknownWithinBudget(t *testing.T) {
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0x9e3779b97f4a7c15)
	const budget = 500
	before := s.Stats().Conflicts
	start := time.Now()
	got := s.SolveLimited(Limits{MaxConflicts: budget})
	if got != Unknown {
		t.Fatalf("status = %v, want Unknown (instance solved inside %d conflicts?)", got, budget)
	}
	if r := s.StopReason(); r != StopConflicts {
		t.Fatalf("stop reason = %v, want conflicts", r)
	}
	spent := s.Stats().Conflicts - before
	// The budget check runs every 64 search steps on both the decision and
	// the conflict path, so overshoot is bounded by the check cadence.
	if spent < budget || spent > budget+128 {
		t.Errorf("spent %d conflicts, want within [%d, %d]", spent, budget, budget+128)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("budgeted solve took %v — budget did not bound the search", elapsed)
	}
}

func TestBudgetPropagations(t *testing.T) {
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0x2545f4914f6cdd1d)
	before := s.Stats().Propagations
	if got := s.SolveLimited(Limits{MaxPropagations: 10_000}); got != Unknown {
		t.Fatalf("status = %v, want Unknown", got)
	}
	if r := s.StopReason(); r != StopPropagations {
		t.Fatalf("stop reason = %v, want propagations", r)
	}
	if spent := s.Stats().Propagations - before; spent < 10_000 {
		t.Errorf("stopped after only %d propagations", spent)
	}
}

func TestBudgetLearntBytes(t *testing.T) {
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0xdeadbeefcafef00d)
	if got := s.SolveLimited(Limits{MaxLearntBytes: 4096}); got != Unknown {
		t.Fatalf("status = %v, want Unknown", got)
	}
	if r := s.StopReason(); r != StopLearntBytes {
		t.Fatalf("stop reason = %v, want learnt-bytes", r)
	}
	if got := s.LearntBytes(); got <= 4096 {
		t.Errorf("learnt bytes %d under budget yet stopped", got)
	}
}

// TestBudgetStopReasonResets pins that a conclusive solve clears the
// previous Unknown's stop reason.
func TestBudgetStopReasonResets(t *testing.T) {
	s := New()
	loadHardRandom3SAT(s, 300, 1278, 0x123456789abcdef1)
	if got := s.SolveLimited(Limits{MaxConflicts: 100}); got != Unknown {
		t.Fatalf("first solve = %v, want Unknown", got)
	}
	if s.StopReason() == StopNone {
		t.Fatal("stop reason missing after budget exhaustion")
	}
	easy := New()
	a, b := easy.NewVar(), easy.NewVar()
	easy.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	if got := easy.SolveLimited(Limits{MaxConflicts: 100}); got != Sat {
		t.Fatalf("easy solve = %v, want Sat", got)
	}
	if r := easy.StopReason(); r != StopNone {
		t.Errorf("stop reason = %v after Sat, want none", r)
	}
	// Re-solving the hard instance with a budget resets and re-records.
	if got := s.SolveLimited(Limits{MaxConflicts: 100}); got != Unknown {
		t.Fatalf("re-solve = %v, want Unknown", got)
	}
	if r := s.StopReason(); r != StopConflicts {
		t.Errorf("re-solve stop reason = %v, want conflicts", r)
	}
}

func TestStopReasonStrings(t *testing.T) {
	cases := map[StopReason]string{
		StopNone: "", StopConflicts: "conflicts", StopPropagations: "propagations",
		StopLearntBytes: "learnt-bytes", StopDeadline: "deadline", StopCancel: "cancel",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if StopDeadline.Budget() || StopCancel.Budget() || StopNone.Budget() {
		t.Error("deadline/cancel/none must not classify as budget exhaustion")
	}
	if !StopConflicts.Budget() || !StopPropagations.Budget() || !StopLearntBytes.Budget() {
		t.Error("resource limits must classify as budget exhaustion")
	}
}
