package interp

import (
	"testing"

	"buffy/internal/compose"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
)

// TestCCACWitnessReplaysConcretely is the composed-system differential
// test: the solver's ack-burst loss witness (three programs connected by
// buffers) is replayed through the concrete composition runtime and must
// reproduce every final backlog, drop count and variable.
func TestCCACWitnessReplaysConcretely(t *testing.T) {
	const (
		C, B, IW = 1, 1, 2
		K, T     = 2, 8
	)
	// --- Symbolic run.
	sv := solver.New(solver.Options{})
	sys, err := compose.BuildCCAC(sv.Builder(), compose.CCACParams{C: C, B: B, IW: IW, K: K, T: T})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Sys.CheckQuery(sv, sys.Loss(sv.Builder()))
	if !res.Sat {
		t.Fatal("expected a loss witness")
	}
	tr := sys.Sys.ExtractTrace(sv)

	// --- Concrete replay with identical shapes.
	big := T*4 + 16
	newM := func(src string, params map[string]int64, bufCap int) *Machine {
		info, err := qm.Load(src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(info, Options{T: T, Params: params, BufferCap: bufCap, OutBufferCap: big})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	aimd := newM(qm.AIMDSrc, map[string]int64{"IW": IW}, big)
	path := newM(qm.PathServerSrc, map[string]int64{"C": C, "B": B}, K)
	delay := newM(qm.DelaySrc, nil, big)

	cs := NewSystem()
	for _, add := range []struct {
		name string
		m    *Machine
	}{{"aimd", aimd}, {"path", path}, {"delay", delay}} {
		if err := cs.Add(add.name, add.m); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []SystemConn{
		{"aimd", "net", "path", "pin"},
		{"path", "pab", "delay", "din"},
		{"delay", "dout", "aimd", "acks"},
	} {
		if err := cs.Connect(c.FromProg, c.FromBuf, c.ToProg, c.ToBuf); err != nil {
			t.Fatal(err)
		}
	}

	// Havoc sources consume each machine's events in order.
	for name, m := range map[string]*Machine{"aimd": aimd, "path": path, "delay": delay} {
		evs := tr.Havocs[name]
		idx := 0
		m.SetHavocSource(func(step int, hname string) int64 {
			for idx < len(evs) {
				h := evs[idx]
				idx++
				if h.Step == step && h.Name == hname {
					return h.Value
				}
			}
			return 0
		})
	}

	inject := func(step int) {
		for name, m := range map[string]*Machine{"aimd": aimd, "path": path, "delay": delay} {
			for _, ev := range tr.Packets[name] {
				if ev.Step != step {
					continue
				}
				m.Buffer(ev.Buffer).Arrive(Packet{Fields: append([]int64(nil), ev.Fields...), Bytes: ev.Bytes})
			}
		}
	}
	for step := 0; step < T; step++ {
		inject(step)
		if err := cs.Step(step); err != nil {
			t.Fatal(err)
		}
	}

	// --- Compare every observable.
	check := func(prog string, m *Machine) {
		t.Helper()
		for bn, want := range tr.Backlogs[prog] {
			if got := m.Buffer(bn).BacklogP(); got != want {
				t.Errorf("%s.%s backlog: interp=%d solver=%d", prog, bn, got, want)
			}
		}
		for bn, want := range tr.Dropped[prog] {
			if got := m.Buffer(bn).Dropped; got != want {
				t.Errorf("%s.%s dropped: interp=%d solver=%d", prog, bn, got, want)
			}
		}
		for vn, want := range tr.Vars[prog] {
			if got := m.Var(vn); got != want {
				t.Errorf("%s.%s: interp=%d solver=%d", prog, vn, got, want)
			}
		}
	}
	check("aimd", aimd)
	check("path", path)
	check("delay", delay)

	// And the witness property itself: loss occurred at the bottleneck.
	if path.Buffer("pin").Dropped == 0 {
		t.Error("replay lost the loss: pin.dropped == 0")
	}
}
