package interp

import (
	"fmt"

	"buffy/internal/lang/ast"
)

// eval evaluates an expression to an int64 (booleans as 0/1), wrapping
// integer arithmetic at the configured width — the same two's-complement
// semantics the bit-blasted encoding has.
func (m *Machine) eval(e ast.Expr, le loopEnv) (int64, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return m.wrap(n.Value), nil
	case *ast.BoolLit:
		if n.Value {
			return 1, nil
		}
		return 0, nil
	case *ast.Ident:
		return m.evalIdent(n, le)
	case *ast.Unary:
		x, err := m.eval(n.X, le)
		if err != nil {
			return 0, err
		}
		if n.Op == ast.OpNot {
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return m.wrap(-x), nil
	case *ast.Binary:
		return m.evalBinary(n, le)
	case *ast.Index:
		base, ok := n.X.(*ast.Ident)
		if !ok {
			return 0, fmt.Errorf("interp: bad index base")
		}
		idx, err := m.eval(n.Idx, le)
		if err != nil {
			return 0, err
		}
		if size, isArr := m.arraySize[base.Name]; isArr {
			if idx < 0 || idx >= size {
				return 0, nil // out-of-range read: zero value
			}
			return m.vars[fmt.Sprintf("%s[%d]", base.Name, idx)], nil
		}
		return 0, fmt.Errorf("interp: %q is not an array", base.Name)
	case *ast.Backlog:
		buf, fs, err := m.resolveBuf(n.Buf, le)
		if err != nil {
			return 0, err
		}
		if buf == nil {
			return 0, nil // null buffer
		}
		var total int64
		for _, p := range buf.Pkts {
			if matches(p, fs) {
				if n.Bytes {
					total += p.Bytes
				} else {
					total++
				}
			}
		}
		return total, nil
	case *ast.ListQuery:
		lname := n.List.(*ast.Ident).Name
		l := m.lists[lname]
		switch n.Op {
		case ast.ListEmpty:
			if len(l) == 0 {
				return 1, nil
			}
			return 0, nil
		case ast.ListSize:
			return int64(len(l)), nil
		case ast.ListHas:
			arg, err := m.eval(n.Arg, le)
			if err != nil {
				return 0, err
			}
			for _, v := range l {
				if v == arg {
					return 1, nil
				}
			}
			return 0, nil
		}
	case *ast.PopFront:
		return 0, fmt.Errorf("interp: pop_front outside assignment")
	case *ast.Filter:
		return 0, fmt.Errorf("interp: a filtered buffer is not a value")
	}
	return 0, fmt.Errorf("interp: unhandled expression %T", e)
}

func (m *Machine) evalIdent(n *ast.Ident, le loopEnv) (int64, error) {
	if le != nil {
		if v, ok := le[n.Name]; ok {
			return v, nil
		}
	}
	if v, ok := m.vars[n.Name]; ok {
		return v, nil
	}
	if n.Name == "t" {
		return int64(m.step), nil
	}
	if v, ok := m.opts.Params[n.Name]; ok {
		return v, nil
	}
	if n.Name == "T" {
		return int64(m.opts.T), nil
	}
	return 0, fmt.Errorf("interp: unbound identifier %q", n.Name)
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) evalBinary(n *ast.Binary, le loopEnv) (int64, error) {
	x, err := m.eval(n.X, le)
	if err != nil {
		return 0, err
	}
	y, err := m.eval(n.Y, le)
	if err != nil {
		return 0, err
	}
	switch n.Op {
	case ast.OpAdd:
		return m.wrap(x + y), nil
	case ast.OpSub:
		return m.wrap(x - y), nil
	case ast.OpMul:
		return m.wrap(x * y), nil
	case ast.OpDiv:
		if y == 0 {
			return 0, fmt.Errorf("interp: division by zero")
		}
		return m.wrap(x / y), nil
	case ast.OpMod:
		if y == 0 {
			return 0, fmt.Errorf("interp: modulo by zero")
		}
		return m.wrap(x % y), nil
	case ast.OpEq:
		return boolToInt(x == y), nil
	case ast.OpNeq:
		return boolToInt(x != y), nil
	case ast.OpLt:
		return boolToInt(x < y), nil
	case ast.OpLe:
		return boolToInt(x <= y), nil
	case ast.OpGt:
		return boolToInt(x > y), nil
	case ast.OpGe:
		return boolToInt(x >= y), nil
	case ast.OpAnd:
		return boolToInt(x != 0 && y != 0), nil
	case ast.OpOr:
		return boolToInt(x != 0 || y != 0), nil
	}
	return 0, fmt.Errorf("interp: unhandled operator %v", n.Op)
}

// constEval evaluates compile-time constant expressions (initializers,
// loop bounds, buffer sizes).
func (m *Machine) constEval(e ast.Expr, le loopEnv) (int64, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Value, nil
	case *ast.BoolLit:
		return boolToInt(n.Value), nil
	case *ast.Ident:
		if le != nil {
			if v, ok := le[n.Name]; ok {
				return v, nil
			}
		}
		if v, ok := m.opts.Params[n.Name]; ok {
			return v, nil
		}
		if n.Name == "T" {
			return int64(m.opts.T), nil
		}
		if n.Name == "t" {
			return int64(m.step), nil
		}
		return 0, fmt.Errorf("interp: %q is not a compile-time constant", n.Name)
	case *ast.Unary:
		v, err := m.constEval(n.X, le)
		if err != nil {
			return 0, err
		}
		if n.Op == ast.OpNegate {
			return -v, nil
		}
		return boolToInt(v == 0), nil
	case *ast.Binary:
		x, err := m.constEval(n.X, le)
		if err != nil {
			return 0, err
		}
		y, err := m.constEval(n.Y, le)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case ast.OpAdd:
			return x + y, nil
		case ast.OpSub:
			return x - y, nil
		case ast.OpMul:
			return x * y, nil
		case ast.OpDiv:
			if y == 0 {
				return 0, fmt.Errorf("interp: division by zero")
			}
			return x / y, nil
		case ast.OpMod:
			if y == 0 {
				return 0, fmt.Errorf("interp: modulo by zero")
			}
			return x % y, nil
		}
	}
	return 0, fmt.Errorf("interp: not a compile-time constant: %s", e)
}
