package interp

import (
	"fmt"

	"buffy/internal/backend/smtbe"
	"buffy/internal/lang/typecheck"
)

// Replay runs a solver-produced trace through the concrete interpreter.
// The interpreter options must mirror the ir.Options used for the check
// (T, Params, capacities); mismatched options make disagreement expected.
//
// Replay returns an error if an assume() is violated — which would mean
// the solver produced an infeasible trace — and otherwise the machine in
// its final state, with assert failures recorded.
func Replay(info *typecheck.Info, opts Options, tr *smtbe.Trace) (*Machine, error) {
	m, err := New(info, opts)
	if err != nil {
		return nil, err
	}
	// Havoc values are consumed in execution order.
	hIdx := 0
	m.SetHavocSource(func(step int, name string) int64 {
		for hIdx < len(tr.Havocs) {
			h := tr.Havocs[hIdx]
			hIdx++
			if h.Step == step && h.Name == name {
				return h.Value
			}
		}
		return 0
	})
	for t := 0; t < opts.T; t++ {
		for _, p := range tr.Packets {
			if p.Step != t {
				continue
			}
			buf := m.Buffer(p.Buffer)
			if buf == nil {
				return nil, fmt.Errorf("interp: trace references unknown buffer %q", p.Buffer)
			}
			buf.Arrive(Packet{Fields: append([]int64(nil), p.Fields...), Bytes: p.Bytes})
		}
		if err := m.Step(t); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Diff compares the interpreter's end state against the solver trace's
// observations; any discrepancy is a soundness bug in one of the two
// semantics. It returns a list of human-readable mismatches.
func Diff(m *Machine, tr *smtbe.Trace) []string {
	var out []string
	last := len(tr.Vars) - 1
	if last < 0 {
		return out
	}
	for name, want := range tr.Vars[last] {
		got, ok := m.vars[name]
		if !ok {
			continue // locals may appear in snapshots; skip unknown names
		}
		if got != want {
			out = append(out, fmt.Sprintf("var %s: interp=%d solver=%d", name, got, want))
		}
	}
	for name, want := range tr.Backlogs[last] {
		buf := m.Buffer(name)
		if buf == nil {
			out = append(out, fmt.Sprintf("buffer %s missing in interpreter", name))
			continue
		}
		if got := buf.BacklogP(); got != want {
			out = append(out, fmt.Sprintf("backlog(%s): interp=%d solver=%d", name, got, want))
		}
	}
	for name, want := range tr.Dropped[last] {
		buf := m.Buffer(name)
		if buf == nil {
			continue
		}
		if got := buf.Dropped; got != want {
			out = append(out, fmt.Sprintf("dropped(%s): interp=%d solver=%d", name, got, want))
		}
	}
	return out
}
