package interp

import "fmt"

// SystemConn is one concrete buffer connection.
type SystemConn struct {
	FromProg, FromBuf string
	ToProg, ToBuf     string
}

// System composes concrete machines the same way compose.System composes
// symbolic ones: per step, every program runs, then each connected output
// buffer flushes into its input, visible at the next step. It is the
// concrete-simulation counterpart used to replay composed counterexamples
// and to explore composed models interactively.
type System struct {
	machines map[string]*Machine
	order    []string
	conns    []SystemConn
}

// NewSystem returns an empty concrete system.
func NewSystem() *System {
	return &System{machines: make(map[string]*Machine)}
}

// Add registers a machine under its program name.
func (s *System) Add(name string, m *Machine) error {
	if _, dup := s.machines[name]; dup {
		return fmt.Errorf("interp: program %q added twice", name)
	}
	s.machines[name] = m
	s.order = append(s.order, name)
	return nil
}

// Machine returns a registered machine.
func (s *System) Machine(name string) *Machine { return s.machines[name] }

// Connect wires an output buffer to an input buffer.
func (s *System) Connect(fromProg, fromBuf, toProg, toBuf string) error {
	from, ok := s.machines[fromProg]
	if !ok {
		return fmt.Errorf("interp: unknown program %q", fromProg)
	}
	to, ok := s.machines[toProg]
	if !ok {
		return fmt.Errorf("interp: unknown program %q", toProg)
	}
	if from.Buffer(fromBuf) == nil || to.Buffer(toBuf) == nil {
		return fmt.Errorf("interp: unknown buffer in connection %s.%s -> %s.%s",
			fromProg, fromBuf, toProg, toBuf)
	}
	s.conns = append(s.conns, SystemConn{fromProg, fromBuf, toProg, toBuf})
	return nil
}

// Step executes one composed step: each machine runs (arrivals must have
// been injected by the caller beforehand), then connections flush.
func (s *System) Step(t int) error {
	for _, name := range s.order {
		if err := s.machines[name].Step(t); err != nil {
			return fmt.Errorf("interp: %s step %d: %w", name, t, err)
		}
	}
	for _, c := range s.conns {
		FlushInto(s.machines[c.FromProg].Buffer(c.FromBuf), s.machines[c.ToProg].Buffer(c.ToBuf))
	}
	return nil
}
