// Package interp is a concrete interpreter for Buffy programs: the same
// one-step semantics the ir package encodes symbolically, executed over
// ordinary Go values. Its two jobs are (1) plain simulation of Buffy models
// on concrete traffic and (2) differential validation of the solver
// pipeline — every counterexample or witness trace a back-end produces is
// replayed here and must reproduce the same monitor values, backlogs and
// assert outcomes. The semantics (arrival flushing, local resets,
// out-of-range indexing, empty pops, capacity drops, FIFO move order,
// integer wrap-around at the solver width) deliberately mirror ir's
// encodings case by case.
package interp

import (
	"fmt"

	"buffy/internal/lang/ast"
	"buffy/internal/lang/typecheck"
)

// Packet is a concrete packet.
type Packet struct {
	Fields []int64
	Bytes  int64
}

// Buffer is a concrete FIFO packet buffer with capacity and drop counting.
type Buffer struct {
	Cap     int
	Pkts    []Packet
	Dropped int64
}

// BacklogP returns the packet count.
func (b *Buffer) BacklogP() int64 { return int64(len(b.Pkts)) }

// BacklogB returns the byte count.
func (b *Buffer) BacklogB() int64 {
	var n int64
	for _, p := range b.Pkts {
		n += p.Bytes
	}
	return n
}

// Arrive appends a packet, dropping it if the buffer is full.
func (b *Buffer) Arrive(p Packet) {
	if len(b.Pkts) >= b.Cap {
		b.Dropped++
		return
	}
	b.Pkts = append(b.Pkts, p)
}

// Options configures an interpreter run. The zero value matches ir's
// defaults where they matter for agreement.
type Options struct {
	Params       map[string]int64
	T            int
	BufferCap    int // default 8
	OutBufferCap int // default matches ir's heuristic
	ListCap      int // default max(#inputs, 4)
	Width        int // integer wrap width; default 12 (bitblast.DefaultWidth)
	// ArrivalsPerStep only affects the ir-matching OutBufferCap default.
	ArrivalsPerStep int
}

// AssertFailure records a failed assert during execution.
type AssertFailure struct {
	Step int
	Stmt *ast.Assert
}

func (a AssertFailure) String() string {
	return fmt.Sprintf("assert failed at step %d (%v)", a.Step, a.Stmt.Pos())
}

// ErrAssumeViolated is returned by Step when an assume() evaluates to
// false: the supplied inputs are outside the modeled workload.
type ErrAssumeViolated struct {
	Step int
	Stmt *ast.Assume
}

func (e *ErrAssumeViolated) Error() string {
	return fmt.Sprintf("interp: assume violated at step %d (%v)", e.Step, e.Stmt.Pos())
}

// HavocSource supplies concrete values for havoc statements, in execution
// order within each step.
type HavocSource func(step int, name string) int64

// Machine executes one Buffy program concretely.
type Machine struct {
	info *typecheck.Info
	opts Options

	vars      map[string]int64 // bools stored as 0/1
	boolVar   map[string]bool  // name -> is boolean
	arraySize map[string]int64
	lists     map[string][]int64
	listCap   int
	bufs      map[string]*Buffer
	bufOrder  []string
	bufInsts  map[string][]string
	inputs    []string
	outputs   []string

	step     int
	failures []AssertFailure
	havoc    HavocSource
}

// New builds a machine with empty initial state.
func New(info *typecheck.Info, opts Options) (*Machine, error) {
	if opts.T <= 0 {
		opts.T = 1
	}
	if opts.BufferCap <= 0 {
		opts.BufferCap = 8
	}
	if opts.Width <= 0 {
		opts.Width = 12
	}
	if opts.ArrivalsPerStep <= 0 {
		opts.ArrivalsPerStep = 1
	}
	m := &Machine{
		info:      info,
		opts:      opts,
		vars:      make(map[string]int64),
		boolVar:   make(map[string]bool),
		arraySize: make(map[string]int64),
		lists:     make(map[string][]int64),
		bufs:      make(map[string]*Buffer),
		bufInsts:  make(map[string][]string),
	}
	for _, p := range info.Params {
		if _, ok := opts.Params[p]; !ok {
			return nil, fmt.Errorf("interp: missing compile-time parameter %q", p)
		}
	}
	numInputs := 0
	for _, bp := range info.Prog.Params {
		n := int64(1)
		if bp.Size != nil {
			var err error
			n, err = m.constEval(bp.Size, nil)
			if err != nil {
				return nil, err
			}
		}
		if bp.Dir == ast.DirIn {
			numInputs += int(n)
		}
	}
	if opts.ListCap <= 0 {
		opts.ListCap = numInputs
		if opts.ListCap < 4 {
			opts.ListCap = 4
		}
	}
	if opts.OutBufferCap <= 0 {
		opts.OutBufferCap = opts.T*opts.ArrivalsPerStep*numInputs + opts.BufferCap
		if opts.OutBufferCap < opts.BufferCap {
			opts.OutBufferCap = opts.BufferCap
		}
	}
	m.opts = opts
	m.listCap = opts.ListCap

	for _, bp := range info.Prog.Params {
		n := int64(1)
		if bp.Size != nil {
			n, _ = m.constEval(bp.Size, nil)
		}
		cap := opts.BufferCap
		if bp.Dir == ast.DirOut {
			cap = opts.OutBufferCap
		}
		var insts []string
		for i := int64(0); i < n; i++ {
			name := bp.Name
			if bp.Size != nil {
				name = fmt.Sprintf("%s[%d]", bp.Name, i)
			}
			insts = append(insts, name)
			m.bufOrder = append(m.bufOrder, name)
			m.bufs[name] = &Buffer{Cap: cap}
			if bp.Dir == ast.DirIn {
				m.inputs = append(m.inputs, name)
			} else {
				m.outputs = append(m.outputs, name)
			}
		}
		m.bufInsts[bp.Name] = insts
	}
	for _, d := range info.Prog.Decls {
		if err := m.initVar(d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Machine) initVar(d *ast.VarDecl) error {
	if d.Type.Kind == ast.TList {
		m.lists[d.Name] = nil
		return nil
	}
	var init int64
	if d.Init != nil {
		v, err := m.constEval(d.Init, nil)
		if err != nil {
			return err
		}
		init = v
	}
	isBool := d.Type.Kind == ast.TBool
	if d.Type.IsArray() {
		n, err := m.constEval(d.Type.Size, nil)
		if err != nil {
			return err
		}
		m.arraySize[d.Name] = n
		for i := int64(0); i < n; i++ {
			slot := fmt.Sprintf("%s[%d]", d.Name, i)
			m.vars[slot] = init
			m.boolVar[slot] = isBool
		}
		return nil
	}
	m.vars[d.Name] = init
	m.boolVar[d.Name] = isBool
	return nil
}

// Buffer returns the named buffer instance (e.g. "ibs[0]").
func (m *Machine) Buffer(name string) *Buffer { return m.bufs[name] }

// Inputs returns the input buffer instance names.
func (m *Machine) Inputs() []string { return m.inputs }

// Outputs returns the output buffer instance names.
func (m *Machine) Outputs() []string { return m.outputs }

// Var reads a scalar variable (bools as 0/1).
func (m *Machine) Var(name string) int64 { return m.vars[name] }

// Failures returns the assert failures recorded so far.
func (m *Machine) Failures() []AssertFailure { return m.failures }

// SetHavocSource installs the supplier of havoc values; without one,
// havocs evaluate to 0.
func (m *Machine) SetHavocSource(h HavocSource) { m.havoc = h }

func (m *Machine) wrap(v int64) int64 {
	w := uint(m.opts.Width)
	mask := int64(1)<<w - 1
	v &= mask
	if v&(1<<(w-1)) != 0 {
		v -= 1 << w
	}
	return v
}

// Step executes one time step. Arriving packets must already have been
// placed into the input buffers by the caller (use Arrive). A false
// assume() aborts the step with ErrAssumeViolated; failed asserts are
// recorded, not fatal.
func (m *Machine) Step(t int) error {
	m.step = t
	// Reset locals.
	for _, d := range m.info.Locals {
		if d.Type.IsArray() {
			for i := int64(0); i < m.arraySize[d.Name]; i++ {
				m.vars[fmt.Sprintf("%s[%d]", d.Name, i)] = 0
			}
		} else {
			m.vars[d.Name] = 0
		}
	}
	return m.execStmts(m.info.Prog.Body, nil)
}

type loopEnv map[string]int64

func (m *Machine) execStmts(stmts []ast.Stmt, le loopEnv) error {
	for _, s := range stmts {
		if err := m.execStmt(s, le); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) execStmt(s ast.Stmt, le loopEnv) error {
	switch n := s.(type) {
	case *ast.Assign:
		return m.execAssign(n, le)
	case *ast.PushBack:
		lname := n.List.(*ast.Ident).Name
		v, err := m.eval(n.Arg, le)
		if err != nil {
			return err
		}
		if len(m.lists[lname]) < m.listCap {
			m.lists[lname] = append(m.lists[lname], v)
		}
		return nil
	case *ast.Move:
		return m.execMove(n, le)
	case *ast.If:
		c, err := m.eval(n.Cond, le)
		if err != nil {
			return err
		}
		if c != 0 {
			return m.execStmts(n.Then, le)
		}
		return m.execStmts(n.Else, le)
	case *ast.For:
		lo, err := m.constEval(n.Lo, le)
		if err != nil {
			return err
		}
		hi, err := m.constEval(n.Hi, le)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			inner := loopEnv{}
			for k, v := range le {
				inner[k] = v
			}
			inner[n.Var] = i
			if err := m.execStmts(n.Body, inner); err != nil {
				return err
			}
		}
		return nil
	case *ast.Assert:
		c, err := m.eval(n.Cond, le)
		if err != nil {
			return err
		}
		if c == 0 {
			m.failures = append(m.failures, AssertFailure{Step: m.step, Stmt: n})
		}
		return nil
	case *ast.Assume:
		c, err := m.eval(n.Cond, le)
		if err != nil {
			return err
		}
		if c == 0 {
			return &ErrAssumeViolated{Step: m.step, Stmt: n}
		}
		return nil
	case *ast.Havoc:
		var v int64
		if m.havoc != nil {
			v = m.havoc(m.step, n.Target.Name)
		}
		if m.boolVar[n.Target.Name] && v != 0 {
			v = 1
		}
		m.vars[n.Target.Name] = m.wrap(v)
		return nil
	}
	return fmt.Errorf("interp: unhandled statement %T", s)
}

func (m *Machine) execAssign(n *ast.Assign, le loopEnv) error {
	var val int64
	if pf, ok := n.RHS.(*ast.PopFront); ok {
		lname := pf.List.(*ast.Ident).Name
		l := m.lists[lname]
		if len(l) > 0 {
			val = l[0]
			m.lists[lname] = l[1:]
		} else {
			val = 0
		}
	} else {
		v, err := m.eval(n.RHS, le)
		if err != nil {
			return err
		}
		val = v
	}
	switch tgt := n.LHS.(type) {
	case *ast.Ident:
		if m.boolVar[tgt.Name] && val != 0 {
			val = 1
		}
		m.vars[tgt.Name] = val
		return nil
	case *ast.Index:
		base := tgt.X.(*ast.Ident).Name
		idx, err := m.eval(tgt.Idx, le)
		if err != nil {
			return err
		}
		if idx >= 0 && idx < m.arraySize[base] {
			m.vars[fmt.Sprintf("%s[%d]", base, idx)] = val
		}
		return nil
	}
	return fmt.Errorf("interp: bad assignment target")
}

// resolveBuf resolves a buffer expression to an instance (or nil when a
// run-time index is out of range — the "null buffer") plus filters.
func (m *Machine) resolveBuf(e ast.Expr, le loopEnv) (*Buffer, []filterSpec, error) {
	switch n := e.(type) {
	case *ast.Ident:
		insts := m.bufInsts[n.Name]
		if len(insts) == 0 {
			return nil, nil, fmt.Errorf("interp: %q is not a buffer", n.Name)
		}
		return m.bufs[insts[0]], nil, nil
	case *ast.Index:
		base := n.X.(*ast.Ident).Name
		insts := m.bufInsts[base]
		idx, err := m.eval(n.Idx, le)
		if err != nil {
			return nil, nil, err
		}
		if idx < 0 || idx >= int64(len(insts)) {
			return nil, nil, nil // null buffer
		}
		return m.bufs[insts[idx]], nil, nil
	case *ast.Filter:
		buf, fs, err := m.resolveBuf(n.Buf, le)
		if err != nil {
			return nil, nil, err
		}
		v, err := m.eval(n.Value, le)
		if err != nil {
			return nil, nil, err
		}
		fidx := m.info.FieldIndex[n.Field]
		return buf, append(fs, filterSpec{field: fidx, value: v}), nil
	}
	return nil, nil, fmt.Errorf("interp: expected buffer expression")
}

type filterSpec struct {
	field int
	value int64
}

func matches(p Packet, fs []filterSpec) bool {
	for _, f := range fs {
		if f.field >= len(p.Fields) || p.Fields[f.field] != f.value {
			return false
		}
	}
	return true
}

func (m *Machine) execMove(n *ast.Move, le loopEnv) error {
	src, fs, err := m.resolveBuf(n.Src, le)
	if err != nil {
		return err
	}
	dst, dfs, err := m.resolveBuf(n.Dst, le)
	if err != nil {
		return err
	}
	if len(dfs) > 0 {
		return fmt.Errorf("interp: move destination cannot be filtered")
	}
	count, err := m.eval(n.Count, le)
	if err != nil {
		return err
	}
	if src == nil || dst == nil || src == dst {
		return nil // null buffer or self-move: no-op
	}
	MovePackets(src, dst, count, fs, n.Bytes)
	return nil
}

// MovePackets implements the concrete move semantics shared with the
// symbolic encoding: take the first matching packets (bounded by count
// packets, or by count bytes as a maximal blocked prefix), preserve order,
// drop past dst capacity.
func MovePackets(src, dst *Buffer, count int64, fs []filterSpec, bytes bool) {
	var kept []Packet
	budget := count
	for _, p := range src.Pkts {
		take := false
		if matches(p, fs) {
			if bytes {
				if p.Bytes <= budget {
					take = true
					budget -= p.Bytes
				} else {
					budget = -1 // head blocks: nothing further moves
				}
			} else if budget > 0 {
				take = true
				budget--
			}
		}
		if take {
			if len(dst.Pkts) < dst.Cap {
				dst.Pkts = append(dst.Pkts, p)
			} else {
				dst.Dropped++
			}
		} else {
			kept = append(kept, p)
		}
	}
	src.Pkts = kept
}

// FlushInto moves everything from src to dst (composition semantics).
func FlushInto(src, dst *Buffer) {
	MovePackets(src, dst, src.BacklogP(), nil, false)
}
