package interp

import (
	"math/rand"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
)

func load(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	info, err := qm.Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return info
}

func TestSimpleMove(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) { move-p(a, b, 2); }`)
	m, err := New(info, Options{T: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Buffer("a").Arrive(Packet{Fields: []int64{int64(i)}, Bytes: 1})
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Buffer("a").BacklogP(); got != 1 {
		t.Errorf("backlog(a) = %d, want 1", got)
	}
	if got := m.Buffer("b").BacklogP(); got != 2 {
		t.Errorf("backlog(b) = %d, want 2", got)
	}
	// FIFO: b holds flows 0,1; a holds flow 2.
	if m.Buffer("b").Pkts[0].Fields[0] != 0 || m.Buffer("b").Pkts[1].Fields[0] != 1 {
		t.Error("move did not preserve FIFO order")
	}
}

func TestAssertAndAssume(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		assume(backlog-p(a) <= 2);
		assert(backlog-p(a) <= 1);
		move-p(a, b, backlog-p(a));
	}`)
	m, _ := New(info, Options{T: 1})
	m.Buffer("a").Arrive(Packet{Fields: []int64{0}, Bytes: 1})
	m.Buffer("a").Arrive(Packet{Fields: []int64{0}, Bytes: 1})
	if err := m.Step(0); err != nil {
		t.Fatalf("assume should hold: %v", err)
	}
	if len(m.Failures()) != 1 {
		t.Errorf("failures = %d, want 1", len(m.Failures()))
	}
	// Third packet violates the assume.
	m2, _ := New(info, Options{T: 1})
	for i := 0; i < 3; i++ {
		m2.Buffer("a").Arrive(Packet{Fields: []int64{0}, Bytes: 1})
	}
	if err := m2.Step(0); err == nil {
		t.Error("expected ErrAssumeViolated")
	}
}

func TestListOpsAndLoops(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		global list l;
		local int x; local bool e;
		for (i in 0..3) { l.push_back(i * 10); }
		x = l.pop_front();
		assert(x == 0);
		assert(l.has(20));
		assert(!l.has(0));
		e = l.empty();
		assert(!e);
		assert(l.size() == 2);
		move-p(a, b, 1);
	}`)
	m, _ := New(info, Options{T: 1})
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if len(m.Failures()) != 0 {
		t.Fatalf("unexpected assert failures: %v", m.Failures())
	}
}

func TestFQBuggyConcreteStarvation(t *testing.T) {
	// Drive the buggy scheduler with the adversarial pattern from the RFC:
	// queue 0 sends exactly one packet per step; queue 1 has standing
	// demand. Queue 1 must be served at most once.
	info := load(t, qm.FQBuggySrc)
	const T = 8
	m, err := New(info, Options{T: T, Params: map[string]int64{"N": 3}})
	if err != nil {
		t.Fatal(err)
	}
	served := func() int64 { return m.Buffer("ob").BacklogP() }
	q1Drained := int64(0)
	q1Sent := int64(0)
	for step := 0; step < T; step++ {
		// Queue 0 sends a packet every step except step 2: it is not served
		// at step 1 (queue 1's single new-queue turn), so skipping one
		// arrival keeps its backlog at exactly 1 — the RFC's "transmits at
		// just the right rate" condition for re-entering new_queues forever.
		if step != 2 {
			m.Buffer("ibs[0]").Arrive(Packet{Fields: []int64{0}, Bytes: 1})
		}
		if step == 0 {
			m.Buffer("ibs[1]").Arrive(Packet{Fields: []int64{1}, Bytes: 1})
			m.Buffer("ibs[1]").Arrive(Packet{Fields: []int64{1}, Bytes: 1})
			q1Sent = 2
		}
		before := m.Buffer("ibs[1]").BacklogP()
		if err := m.Step(step); err != nil {
			t.Fatal(err)
		}
		q1Drained += before - m.Buffer("ibs[1]").BacklogP()
	}
	if served() != T {
		t.Errorf("output = %d, want %d (work conserving under this load)", served(), T)
	}
	if q1Drained > 1 {
		t.Errorf("queue 1 served %d times; the bug should starve it to <= 1", q1Drained)
	}
	_ = q1Sent
}

// Differential test, solver -> interpreter direction: every witness or
// counterexample trace must replay concretely with identical observations.
func TestReplayAgreesWithSolver(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int64
		T      int
		mode   smtbe.Mode
	}{
		{"fq-buggy-witness", qm.FQBuggyQuerySrc, map[string]int64{"N": 3}, 6, smtbe.Witness},
		{"sp-witness", qm.SPQuerySrc, map[string]int64{"N": 2}, 5, smtbe.Witness},
		{"counterexample", `p(buffer a, buffer b) {
			assert(backlog-p(a) == 0);
			move-p(a, b, backlog-p(a));
		}`, nil, 3, smtbe.Verify},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			info := load(t, c.src)
			res, err := smtbe.Check(info, smtbe.Options{
				IR:   ir.Options{T: c.T, Params: c.params},
				Mode: c.mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace == nil {
				t.Fatalf("no trace produced (status %v)", res.Status)
			}
			m, err := Replay(info, Options{T: c.T, Params: c.params}, res.Trace)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if diffs := Diff(m, res.Trace); len(diffs) > 0 {
				t.Fatalf("solver/interpreter disagree:\n%v\ntrace:\n%s", diffs, res.Trace)
			}
			switch c.mode {
			case smtbe.Witness:
				if len(m.Failures()) != 0 {
					t.Errorf("witness replay has assert failures: %v", m.Failures())
				}
			case smtbe.Verify:
				if len(m.Failures()) == 0 {
					t.Error("counterexample replay should fail an assert")
				}
			}
		})
	}
}

// Differential test, interpreter -> solver direction: for random concrete
// arrival patterns, pinning the symbolic arrivals to those values must
// force the solver to agree with the interpreter's end state.
func TestRandomTrafficAgreement(t *testing.T) {
	srcs := []struct {
		name   string
		src    string
		params map[string]int64
	}{
		{"rr", qm.RRSrc, map[string]int64{"N": 3}},
		{"sp", qm.SPSrc, map[string]int64{"N": 3}},
		{"fq", qm.FQBuggySrc, map[string]int64{"N": 3}},
		{"filtered", `p(buffer a, buffer b) {
			monitor int m1;
			move-p(a |> flow == 1, b, 1);
			m1 = m1 + backlog-p(b |> flow == 1);
		}`, nil},
	}
	rng := rand.New(rand.NewSource(99))
	const T = 4
	for _, sc := range srcs {
		t.Run(sc.name, func(t *testing.T) {
			info := load(t, sc.src)
			for iter := 0; iter < 5; iter++ {
				// Generate a random arrival pattern: 0..2 packets per input
				// buffer per step, random flow in [0,3).
				irOpts := ir.Options{
					T: T, Params: sc.params, ArrivalsPerStep: 2, NumClasses: 3,
				}
				s := solver.New(solver.Options{})
				comp, err := ir.Compile(info, s.Builder(), irOpts)
				if err != nil {
					t.Fatal(err)
				}
				im, err := New(info, Options{
					T: T, Params: sc.params, ArrivalsPerStep: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				b := s.Builder()
				for _, a := range comp.Assumes {
					s.Assert(a)
				}
				// Pin arrivals: group compiled slots by (step, buffer).
				type key struct {
					step int
					buf  string
				}
				slots := map[key][]ir.Arrival{}
				for _, a := range comp.Arrivals {
					k := key{a.Step, a.Buffer}
					slots[k] = append(slots[k], a)
				}
				type arrival struct {
					flow int64
				}
				plan := map[key][]arrival{}
				for k, sl := range slots {
					n := rng.Intn(len(sl) + 1)
					for i := 0; i < n; i++ {
						plan[k] = append(plan[k], arrival{flow: int64(rng.Intn(3))})
					}
				}
				for k, sl := range slots {
					want := plan[k]
					for i, a := range sl {
						if i < len(want) {
							s.Assert(a.Valid)
							s.Assert(b.Eq(a.Fields[0], b.IntConst(want[i].flow)))
						} else {
							s.Assert(b.Not(a.Valid))
						}
					}
				}
				// Run the interpreter on the same plan.
				abort := false
				for step := 0; step < T && !abort; step++ {
					for _, name := range im.Inputs() {
						for _, a := range plan[key{step, name}] {
							im.Buffer(name).Arrive(Packet{Fields: []int64{a.flow}, Bytes: 1})
						}
					}
					if err := im.Step(step); err != nil {
						// Assume violated: the solver must agree the plan is
						// infeasible.
						if got := s.Check(); got != solver.Unsat {
							t.Fatalf("iter %d: interp rejects plan (%v) but solver says %v", iter, err, got)
						}
						abort = true
					}
				}
				if abort {
					continue
				}
				if got := s.Check(); got != solver.Sat {
					t.Fatalf("iter %d: pinned arrivals should be sat, got %v", iter, got)
				}
				// Compare end-of-run observations.
				tr := smtbe.ExtractTrace(comp, s)
				if diffs := Diff(im, tr); len(diffs) > 0 {
					t.Fatalf("iter %d: disagreement:\n%v", iter, diffs)
				}
			}
		})
	}
}

func TestArraysAndOutOfRange(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		global int[3] arr;
		local int i; local int x;
		for (k in 0..3) { arr[k] = k * 10; }
		i = 7;
		arr[i] = 99;
		x = arr[i];
		assert(x == 0);
		assert(arr[2] == 20);
		move-p(a, b, 1);
	}`)
	m, err := New(info, Options{T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if len(m.Failures()) != 0 {
		t.Fatalf("failures: %v", m.Failures())
	}
	if got := m.Var("arr[1]"); got != 10 {
		t.Errorf("arr[1] = %d", got)
	}
}

func TestHavocBoolNormalized(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		local bool q;
		havoc q;
		if (q) { move-p(a, b, 1); }
	}`)
	m, _ := New(info, Options{T: 1})
	m.SetHavocSource(func(step int, name string) int64 { return 7 }) // non-0/1
	m.Buffer("a").Arrive(Packet{Fields: []int64{0}, Bytes: 1})
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Buffer("b").BacklogP(); got != 1 {
		t.Errorf("havoc bool 7 should read as true; moved = %d", got)
	}
}

func TestWidthWrapInInterpreter(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		global int g;
		g = 2047 + 1;
		assert(g == -2048);
		move-p(a, b, 1);
	}`)
	m, _ := New(info, Options{T: 1, Width: 12})
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if len(m.Failures()) != 0 {
		t.Fatalf("wrap semantics mismatch: %v (g=%d)", m.Failures(), m.Var("g"))
	}
}

func TestFilteredMoveConcrete(t *testing.T) {
	info := load(t, `p(buffer a, buffer b) {
		move-p(a |> flow == 1, b, 2);
	}`)
	m, _ := New(info, Options{T: 1})
	for _, f := range []int64{1, 0, 1, 1} {
		m.Buffer("a").Arrive(Packet{Fields: []int64{f}, Bytes: 1})
	}
	if err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Buffer("b").BacklogP(); got != 2 {
		t.Errorf("moved = %d, want 2", got)
	}
	// Order: a keeps [0, 1] (flows), b holds [1, 1].
	if m.Buffer("a").Pkts[0].Fields[0] != 0 || m.Buffer("a").Pkts[1].Fields[0] != 1 {
		t.Errorf("a remainder wrong: %v", m.Buffer("a").Pkts)
	}
}
