package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
)

// progGen generates random well-typed Buffy programs over a fixed state
// shape: two input buffers (ibs[2]), one output (ob), an int global, a
// bool global, a list, int/bool locals and an int monitor. Every generated
// program is compiled symbolically AND interpreted concretely under the
// same pinned traffic; the two semantics must agree on every observable.
type progGen struct {
	rng   *rand.Rand
	depth int
	loops []string
	buf   strings.Builder
	ind   int
}

func (g *progGen) line(format string, args ...interface{}) {
	g.buf.WriteString(strings.Repeat("  ", g.ind))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *progGen) intExpr(d int) string {
	if d <= 0 {
		switch g.rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(7)-3)
		case 1:
			return "gi"
		case 2:
			return "x"
		case 3:
			if len(g.loops) > 0 {
				return g.loops[g.rng.Intn(len(g.loops))]
			}
			return "t"
		case 4:
			return fmt.Sprintf("backlog-p(ibs[%d])", g.rng.Intn(2))
		default:
			return "l.size()"
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 2:
		return fmt.Sprintf("(%s * %d)", g.intExpr(d-1), g.rng.Intn(3))
	case 3:
		return fmt.Sprintf("(-%s)", g.intExpr(d-1))
	default:
		return g.intExpr(0)
	}
}

func (g *progGen) boolExpr(d int) string {
	if d <= 0 {
		switch g.rng.Intn(5) {
		case 0:
			return "gb"
		case 1:
			return "bl"
		case 2:
			return "l.empty()"
		case 3:
			return fmt.Sprintf("l.has(%d)", g.rng.Intn(4))
		default:
			return "true"
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s < %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 1:
		return fmt.Sprintf("(%s == %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 2:
		return fmt.Sprintf("(%s >= %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 3:
		return fmt.Sprintf("(%s & %s)", g.boolExpr(d-1), g.boolExpr(d-1))
	case 4:
		return fmt.Sprintf("(%s | %s)", g.boolExpr(d-1), g.boolExpr(d-1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(d-1))
	}
}

func (g *progGen) stmt(d int) {
	switch g.rng.Intn(10) {
	case 0, 1:
		g.line("x = %s;", g.intExpr(2))
	case 2:
		g.line("gi = %s;", g.intExpr(2))
	case 3:
		g.line("bl = %s;", g.boolExpr(1))
	case 4:
		g.line("gb = %s;", g.boolExpr(1))
	case 5:
		g.line("l.push_back(%s);", g.intExpr(1))
	case 6:
		g.line("x = l.pop_front();")
	case 7:
		if d > 0 {
			g.line("if (%s) {", g.boolExpr(1))
			g.ind++
			g.block(d-1, 1+g.rng.Intn(2))
			g.ind--
			if g.rng.Intn(2) == 0 {
				g.line("} else {")
				g.ind++
				g.block(d-1, 1)
				g.ind--
			}
			g.line("}")
		} else {
			g.line("mon = mon + 1;")
		}
	case 8:
		if d > 0 && len(g.loops) < 2 {
			v := fmt.Sprintf("i%d", len(g.loops))
			g.line("for (%s in 0..%d) {", v, 1+g.rng.Intn(3))
			g.loops = append(g.loops, v)
			g.ind++
			g.block(d-1, 1+g.rng.Intn(2))
			g.ind--
			g.loops = g.loops[:len(g.loops)-1]
			g.line("}")
		} else {
			g.line("mon = mon + %s;", g.intExpr(1))
		}
	default:
		src := g.rng.Intn(2)
		g.line("move-p(ibs[%d], ob, %s);", src, g.intExpr(1))
	}
}

func (g *progGen) block(d, n int) {
	for i := 0; i < n; i++ {
		g.stmt(d)
	}
}

func (g *progGen) generate() string {
	g.buf.Reset()
	g.line("fuzz(buffer[2] ibs, buffer ob) {")
	g.ind++
	g.line("global int gi; global bool gb; global list l;")
	g.line("local int x; local bool bl;")
	g.line("monitor int mon;")
	g.block(3, 4+g.rng.Intn(4))
	g.line("mon = mon + backlog-p(ob);")
	g.ind--
	g.line("}")
	return g.buf.String()
}

// TestRandomProgramsSolverVsInterpreter is the repository's deepest
// soundness net: 60 random programs, each executed both ways under pinned
// random traffic, comparing every global, the monitor, and every buffer's
// backlog and drop count after every run.
func TestRandomProgramsSolverVsInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	g := &progGen{rng: rng}
	const T = 3
	programs := 60
	if testing.Short() {
		programs = 10
	}
	for iter := 0; iter < programs; iter++ {
		src := g.generate()
		info, err := qm.Load(src)
		if err != nil {
			t.Fatalf("iter %d: generated program does not check: %v\n%s", iter, err, src)
		}
		sv := solver.New(solver.Options{})
		comp, err := ir.Compile(info, sv.Builder(), ir.Options{T: T, ArrivalsPerStep: 2, NumClasses: 2})
		if err != nil {
			t.Fatalf("iter %d: compile: %v\n%s", iter, err, src)
		}
		for _, a := range comp.Assumes {
			sv.Assert(a)
		}
		b := sv.Builder()

		// Pin a random traffic plan.
		type key struct {
			step int
			buf  string
		}
		slots := map[key][]ir.Arrival{}
		for _, a := range comp.Arrivals {
			k := key{a.Step, a.Buffer}
			slots[k] = append(slots[k], a)
		}
		for _, sl := range slots {
			n := rng.Intn(len(sl) + 1)
			for i, a := range sl {
				if i < n {
					sv.Assert(a.Valid)
					sv.Assert(b.Eq(a.Fields[0], b.IntConst(int64(rng.Intn(2)))))
				} else {
					sv.Assert(b.Not(a.Valid))
				}
			}
		}
		if got := sv.Check(); got != solver.Sat {
			t.Fatalf("iter %d: pinned program infeasible: %v\n%s", iter, got, src)
		}
		// Replay the pinned traffic step by step through the interpreter.
		im2, err := New(info, Options{T: T, ArrivalsPerStep: 2})
		if err != nil {
			t.Fatal(err)
		}
		tr := smtbe.ExtractTrace(comp, sv)
		for step := 0; step < T; step++ {
			for _, ev := range tr.Packets {
				if ev.Step != step {
					continue
				}
				im2.Buffer(ev.Buffer).Arrive(Packet{Fields: append([]int64(nil), ev.Fields...), Bytes: ev.Bytes})
			}
			if err := im2.Step(step); err != nil {
				t.Fatalf("iter %d: interp: %v\n%s", iter, err, src)
			}
		}
		if diffs := Diff(im2, tr); len(diffs) > 0 {
			t.Fatalf("iter %d: solver and interpreter disagree:\n%s\nprogram:\n%s",
				iter, strings.Join(diffs, "\n"), src)
		}
	}
}
