package session_test

import (
	"context"
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/interp"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/qm"
	"buffy/internal/session"
	"buffy/internal/smt/solver"
)

func load(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	info, err := qm.Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return info
}

// corpusCase is one (model, params, mode) family the differential tests
// sweep. The query models guard their assert by t == T - 1 — exactly the
// class the old constant-T deepening answered wrongly.
type corpusCase struct {
	name   string
	src    string
	params map[string]int64
	mode   smtbe.Mode
	maxT   int
}

func corpus() []corpusCase {
	return []corpusCase{
		{"fq-buggy-witness", qm.FQBuggyQuerySrc, map[string]int64{"N": 3}, smtbe.Witness, 5},
		{"fq-fixed-witness", qm.FQFixedQuerySrc, map[string]int64{"N": 3}, smtbe.Witness, 4},
		{"rr-witness", qm.RRQuerySrc, map[string]int64{"N": 2}, smtbe.Witness, 4},
		{"sp-witness", qm.SPQuerySrc, map[string]int64{"N": 3}, smtbe.Witness, 4},
		{"sp-verify", qm.SPQuerySrc, map[string]int64{"N": 2}, smtbe.Verify, 3},
		{"shaper-verify", qm.ShaperSrc, map[string]int64{"RATE": 2, "BURST": 3}, smtbe.Verify, 4},
	}
}

// TestWarmMatchesColdCorpus is the differential guarantee: every verdict
// a warm session produces at horizon k equals a cold compile-and-solve at
// T = k, across the corpus, and warm traces replay cleanly on the
// concrete interpreter.
func TestWarmMatchesColdCorpus(t *testing.T) {
	for _, tc := range corpus() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			info := load(t, tc.src)
			sess, err := session.New(info, session.Options{
				IR: ir.Options{T: tc.maxT, Params: tc.params},
			})
			if err != nil {
				t.Fatalf("session.New: %v", err)
			}
			for T := 1; T <= tc.maxT; T++ {
				warm, err := sess.Solve(context.Background(), session.Query{Mode: tc.mode, T: T})
				if err != nil {
					t.Fatalf("warm T=%d: %v", T, err)
				}
				cold, err := smtbe.Check(info, smtbe.Options{
					IR: ir.Options{T: T, Params: tc.params}, Mode: tc.mode,
				})
				if err != nil {
					t.Fatalf("cold T=%d: %v", T, err)
				}
				if warm.Status != cold.Status {
					t.Fatalf("T=%d: warm %v != cold %v", T, warm.Status, cold.Status)
				}
				if warm.Trace != nil {
					if warm.Trace.T != T {
						t.Fatalf("T=%d: warm trace spans %d steps", T, warm.Trace.T)
					}
					m, err := interp.Replay(info, interp.Options{T: T, Params: tc.params}, warm.Trace)
					if err != nil {
						t.Fatalf("T=%d: replay: %v", T, err)
					}
					if diffs := interp.Diff(m, warm.Trace); len(diffs) > 0 {
						t.Fatalf("T=%d: warm trace diverges on replay: %v", T, diffs)
					}
				}
			}
		})
	}
}

// TestModesInterleaved: one session answers Verify and Witness queries at
// out-of-order horizons; every answer still matches a cold solve. This is
// the "retractable per-query assumptions" property — nothing any query
// does sticks to the session.
func TestModesInterleaved(t *testing.T) {
	info := load(t, qm.RRQuerySrc)
	params := map[string]int64{"N": 2}
	sess, err := session.New(info, session.Options{IR: ir.Options{T: 5, Params: params}})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	queries := []struct {
		mode smtbe.Mode
		T    int
	}{
		{smtbe.Witness, 4}, {smtbe.Verify, 2}, {smtbe.Witness, 1},
		{smtbe.Verify, 5}, {smtbe.Witness, 3}, {smtbe.Verify, 2},
	}
	for i, q := range queries {
		warm, err := sess.Solve(context.Background(), session.Query{Mode: q.mode, T: q.T})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		cold, err := smtbe.Check(info, smtbe.Options{
			IR: ir.Options{T: q.T, Params: params}, Mode: q.mode,
		})
		if err != nil {
			t.Fatalf("cold %d: %v", i, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("query %d (%v T=%d): warm %v != cold %v", i, q.mode, q.T, warm.Status, cold.Status)
		}
	}
	if sess.Queries() != int64(len(queries)) {
		t.Fatalf("Queries() = %d, want %d", sess.Queries(), len(queries))
	}
}

// TestSweepWarm: the sweep finds the same minimal horizon as per-horizon
// cold checks, and reports its verdicts in order.
func TestSweepWarm(t *testing.T) {
	info := load(t, qm.FQBuggyQuerySrc)
	params := map[string]int64{"N": 3}
	sess, err := session.New(info, session.Options{IR: ir.Options{T: 5, Params: params}})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	var streamed []session.Verdict
	sr, err := session.Sweep(context.Background(), info, sess, session.SweepOptions{
		MaxT: 5, Mode: smtbe.Witness,
		OnVerdict: func(v session.Verdict) { streamed = append(streamed, v) },
		Backend:   smtbe.Options{IR: ir.Options{Params: params}},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !sr.Warm {
		t.Error("sweep with a live session should be fully warm")
	}
	if sr.FoundAt == 0 {
		t.Fatal("fq-buggy witness should appear within 5 steps")
	}
	if sr.Final == nil || sr.Final.Trace == nil {
		t.Fatal("sweep should return the found trace")
	}
	if len(streamed) != len(sr.Verdicts) {
		t.Fatalf("streamed %d verdicts, result has %d", len(streamed), len(sr.Verdicts))
	}
	for i, v := range sr.Verdicts {
		if v.T != i+1 {
			t.Fatalf("verdict %d is for T=%d, want %d", i, v.T, i+1)
		}
	}
	// The minimal horizon must agree with the cold deepening loop.
	_, coldT, err := smtbe.FindMinHorizon(info, smtbe.Options{
		IR: ir.Options{Params: params}, Mode: smtbe.Witness,
	}, 5)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if sr.FoundAt != coldT {
		t.Fatalf("warm sweep found T=%d, cold deepening T=%d", sr.FoundAt, coldT)
	}
}

// TestSweepEvictionDegradesCold: closing the session mid-sweep (what pool
// eviction does) degrades the remaining horizons to cold solves with
// identical verdicts — never a wrong answer, never an error.
func TestSweepEvictionDegradesCold(t *testing.T) {
	info := load(t, qm.RRQuerySrc)
	params := map[string]int64{"N": 2}
	sess, err := session.New(info, session.Options{IR: ir.Options{T: 4, Params: params}})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	warmSeen := 0
	sr, err := session.Sweep(context.Background(), info, sess, session.SweepOptions{
		MaxT: 4, Mode: smtbe.Verify,
		OnVerdict: func(v session.Verdict) {
			if v.Warm {
				warmSeen++
			}
			if v.T == 1 {
				sess.Close() // evict mid-sweep
			}
		},
		Backend: smtbe.Options{IR: ir.Options{Params: params}},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sr.Warm {
		t.Error("sweep should report degradation after eviction")
	}
	if warmSeen == 0 {
		t.Error("first horizon should have been answered warm")
	}
	// Compare every verdict against a fully cold sweep.
	cold, err := session.Sweep(context.Background(), info, nil, session.SweepOptions{
		MaxT: 4, Mode: smtbe.Verify,
		Backend: smtbe.Options{IR: ir.Options{Params: params}},
	})
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if len(sr.Verdicts) != len(cold.Verdicts) {
		t.Fatalf("degraded sweep has %d verdicts, cold has %d", len(sr.Verdicts), len(cold.Verdicts))
	}
	for i := range sr.Verdicts {
		if sr.Verdicts[i].Status != cold.Verdicts[i].Status {
			t.Fatalf("T=%d: degraded %v != cold %v",
				sr.Verdicts[i].T, sr.Verdicts[i].Status, cold.Verdicts[i].Status)
		}
	}
	if sr.FoundAt != cold.FoundAt {
		t.Fatalf("degraded FoundAt=%d, cold FoundAt=%d", sr.FoundAt, cold.FoundAt)
	}
}

// TestConstHorizonRejected: a program using T in a constant position
// cannot share one encoding; New must say so, and a nil-session sweep
// still answers it.
func TestConstHorizonRejected(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global int total;
		for (i in 0..T) do { total = total + 1; }
		move-p(a, b, 1);
		assert(total >= 0);
	}`
	info := load(t, src)
	_, err := session.New(info, session.Options{IR: ir.Options{T: 3}})
	if err != session.ErrConstHorizon {
		t.Fatalf("New = %v, want ErrConstHorizon", err)
	}
	sr, err := session.Sweep(context.Background(), info, nil, session.SweepOptions{
		MaxT: 3, Mode: smtbe.Verify,
		Backend: smtbe.Options{},
	})
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if sr.Warm {
		t.Error("nil-session sweep must not report warm")
	}
	if len(sr.Verdicts) != 3 {
		t.Fatalf("expected 3 verdicts, got %d", len(sr.Verdicts))
	}
	for _, v := range sr.Verdicts {
		if v.Status != smtbe.Holds {
			t.Fatalf("T=%d: %v, want holds", v.T, v.Status)
		}
	}
}

// TestHorizonBeyondCapacity: a query deeper than the session's capacity
// is refused with ErrHorizon (the caller's cue to solve cold), not
// answered over undersized buffers.
func TestHorizonBeyondCapacity(t *testing.T) {
	info := load(t, qm.RRQuerySrc)
	sess, err := session.New(info, session.Options{
		IR: ir.Options{T: 2, Params: map[string]int64{"N": 2}},
	})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	if _, err := sess.Solve(context.Background(), session.Query{Mode: smtbe.Witness, T: 3}); err != session.ErrHorizon {
		t.Fatalf("Solve beyond capacity = %v, want ErrHorizon", err)
	}
}

// TestClosedSessionRefuses: Solve on a closed session returns ErrClosed.
func TestClosedSessionRefuses(t *testing.T) {
	info := load(t, qm.RRQuerySrc)
	sess, err := session.New(info, session.Options{
		IR: ir.Options{T: 2, Params: map[string]int64{"N": 2}},
	})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	sess.Close()
	if _, err := sess.Solve(context.Background(), session.Query{Mode: smtbe.Verify, T: 1}); err != session.ErrClosed {
		t.Fatalf("Solve on closed session = %v, want ErrClosed", err)
	}
}

// TestFootprintGrows: the footprint estimate is positive and grows as the
// unrolling deepens — the signal the pool's memory accounting runs on.
func TestFootprintGrows(t *testing.T) {
	info := load(t, qm.RRQuerySrc)
	sess, err := session.New(info, session.Options{
		IR: ir.Options{T: 4, Params: map[string]int64{"N": 2}},
	})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	if _, err := sess.Solve(context.Background(), session.Query{Mode: smtbe.Verify, T: 1}); err != nil {
		t.Fatalf("T=1: %v", err)
	}
	small := sess.Footprint()
	if small <= 0 {
		t.Fatalf("footprint after one step = %d, want > 0", small)
	}
	if _, err := sess.Solve(context.Background(), session.Query{Mode: smtbe.Verify, T: 4}); err != nil {
		t.Fatalf("T=4: %v", err)
	}
	if big := sess.Footprint(); big <= small {
		t.Fatalf("footprint did not grow with the unrolling: %d -> %d", small, big)
	}
}

// TestSolverKnobsDontPanic: sessions built with non-default solver knobs
// (narrow width) answer consistently with an equally-configured cold
// solve — the discrimination the service's session key must preserve.
func TestSolverKnobsDontPanic(t *testing.T) {
	info := load(t, qm.ShaperSrc)
	params := map[string]int64{"RATE": 2, "BURST": 3}
	sess, err := session.New(info, session.Options{
		IR:     ir.Options{T: 3, Params: params},
		Solver: solver.Options{Width: 10},
	})
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}
	for T := 1; T <= 3; T++ {
		warm, err := sess.Solve(context.Background(), session.Query{Mode: smtbe.Verify, T: T})
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		cold, err := smtbe.Check(info, smtbe.Options{
			IR:     ir.Options{T: T, Params: params},
			Solver: solver.Options{Width: 10},
			Mode:   smtbe.Verify,
		})
		if err != nil {
			t.Fatalf("cold T=%d: %v", T, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("T=%d: warm %v != cold %v", T, warm.Status, cold.Status)
		}
	}
}
