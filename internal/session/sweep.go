package session

import (
	"context"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/lang/typecheck"
	"buffy/internal/telemetry"
)

// Verdict is one horizon's answer within a sweep.
type Verdict struct {
	// T is the horizon this verdict is for.
	T int
	// Status is the horizon's outcome.
	Status smtbe.Status
	// Duration is this horizon's solve wall clock.
	Duration time.Duration
	// Warm reports whether the warm session answered (false: cold
	// per-horizon compile+solve, either because the program cannot share
	// an encoding or because the session was evicted mid-sweep).
	Warm bool
	// Conflicts is the cumulative CDCL conflict count after this horizon
	// (session-lifetime for warm verdicts, per-solve for cold ones).
	Conflicts int64
}

// SweepResult is the outcome of a horizon sweep.
type SweepResult struct {
	// Verdicts holds one entry per solved horizon, in increasing order.
	Verdicts []Verdict
	// Final is the result that ended the sweep: the first horizon whose
	// answer carries a trace, an Unknown that stopped it, or the last
	// horizon's result when the sweep ran dry.
	Final *smtbe.Result
	// FoundAt is the first horizon that produced a trace; 0 when none.
	FoundAt int
	// Warm reports whether every verdict came from the warm session.
	Warm bool
	// Duration is the whole sweep's wall clock.
	Duration time.Duration
}

// SweepOptions configures a sweep.
type SweepOptions struct {
	// MaxT is the deepest horizon to try.
	MaxT int
	// Mode is the query direction for every horizon.
	Mode smtbe.Mode
	// OnVerdict, when non-nil, is called with each horizon's verdict as
	// it lands (the streaming hook). Called from the sweeping goroutine.
	OnVerdict func(Verdict)
	// Backend configures cold fallback solves (its IR.T is overwritten
	// per horizon). Also used for every horizon when sess is nil.
	Backend smtbe.Options
	// Query carries per-horizon extras for warm solves (Extra
	// assumptions, Progress); Mode and T are taken from the sweep.
	Query Query
}

// Sweep runs the minimal-horizon search: solve horizons 1..MaxT in order
// until one produces a trace. With a live session the horizons are
// assumption-based re-solves on one warm encoding; when sess is nil, or
// the session is evicted mid-sweep (ErrClosed) or cannot answer
// (ErrHorizon), the remaining horizons degrade to cold per-horizon solves
// — slower, never wrong. Each horizon gets a telemetry span
// ("sweep.horizon", attrs t/status/warm) for the service's stage
// histograms.
func Sweep(ctx context.Context, info *typecheck.Info, sess *Session, opts SweepOptions) (*SweepResult, error) {
	start := time.Now()
	sr := &SweepResult{Warm: true}
	if opts.MaxT < 1 {
		opts.MaxT = 1
	}
	for T := 1; T <= opts.MaxT; T++ {
		hctx, span := telemetry.StartSpan(ctx, "sweep.horizon")
		span.SetAttrs(telemetry.Int("t", int64(T)))
		res, warm, err := solveHorizon(hctx, info, sess, opts, T)
		if err != nil && sess != nil && (err == ErrClosed || err == ErrHorizon) {
			// Mid-sweep eviction (or a capacity mismatch): degrade to cold
			// for this and every remaining horizon.
			sess = nil
			res, warm, err = solveHorizon(hctx, info, nil, opts, T)
		}
		if err != nil {
			span.SetAttrs(telemetry.String("error", err.Error()))
			span.End()
			return nil, err
		}
		v := Verdict{
			T: T, Status: res.Status, Duration: res.Duration,
			Warm: warm, Conflicts: res.SatStats.Conflicts,
		}
		if !warm {
			sr.Warm = false
		}
		sr.Verdicts = append(sr.Verdicts, v)
		sr.Final = res
		span.SetAttrs(
			telemetry.String("status", res.Status.String()),
			telemetry.Bool("warm", warm))
		span.End()
		if opts.OnVerdict != nil {
			opts.OnVerdict(v)
		}
		if res.Trace != nil {
			sr.FoundAt = T
			break
		}
		if res.Status == smtbe.Unknown {
			// A budget/deadline stop at this horizon would also stop every
			// deeper (harder) horizon; report rather than burn the rest.
			break
		}
	}
	sr.Duration = time.Since(start)
	return sr, nil
}

// solveHorizon answers one horizon, warm when a session is available.
func solveHorizon(ctx context.Context, info *typecheck.Info, sess *Session, opts SweepOptions, T int) (*smtbe.Result, bool, error) {
	if sess != nil {
		q := opts.Query
		q.Mode = opts.Mode
		q.T = T
		res, err := sess.Solve(ctx, q)
		if err != nil {
			return nil, true, err
		}
		return res, true, nil
	}
	o := opts.Backend
	o.Mode = opts.Mode
	o.IR.T = T
	res, err := smtbe.CheckContext(ctx, info, o)
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}
