// Package session implements warm solver sessions: a compiled machine and
// an incremental solver kept alive across queries, answering a whole
// family of same-program requests by assumption-based re-solve.
//
// A Session unrolls the program once with a symbolic horizon
// (ir.Options.SymbolicT): the builtin T evaluates to a fresh integer
// variable instead of a constant, so the horizon-k query is just two
// retractable assumptions — TVar == k plus the mode's query term over the
// assert instances of steps 0..k-1 — on one shared encoding. Nothing
// query-specific is ever asserted permanently, which means:
//
//   - learnt clauses survive across queries (they are implied by the
//     problem clauses alone, so they stay valid whatever is assumed next);
//   - one session serves Verify and Witness, any horizon up to its
//     capacity, and caller-supplied extra constraints (workload bounds),
//     in any order;
//   - the unrolling deepens lazily, so a sweep from 1..maxT pays each
//     step's compilation exactly once.
//
// Programs that use T in a compile-time constant position (loop bounds,
// array sizes — the encoding's shape depends on T there) cannot share one
// encoding; New reports ErrConstHorizon and callers fall back to cold
// per-horizon solves. ScanHorizon makes that routing decision.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/sat"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// Errors reported by Session entry points. Callers treat all three as
// "this session cannot answer; solve cold" signals rather than failures.
var (
	// ErrConstHorizon: the program uses T in a constant position, so one
	// symbolic-T encoding cannot serve multiple horizons.
	ErrConstHorizon = errors.New("session: program uses T in a constant position; horizons cannot share one encoding")
	// ErrClosed: the session was evicted/closed; the holder should
	// degrade to cold solves.
	ErrClosed = errors.New("session: closed")
	// ErrHorizon: the requested horizon exceeds the session's capacity
	// (buffer sizes were fixed for the capacity horizon at build time).
	ErrHorizon = errors.New("session: horizon exceeds session capacity")
)

// Options configures a Session.
type Options struct {
	// IR configures compilation. IR.T is the session's capacity: the
	// maximum horizon it will ever answer (capacity heuristics like
	// output buffer sizing are fixed from it, so all horizons share
	// shapes). IR.SymbolicT is set by New.
	IR ir.Options
	// Solver configures the underlying incremental solver, including the
	// per-query search budgets. These are fixed for the session's
	// lifetime — a request with different solver knobs must not share
	// this session (the service keys its pool on all of them).
	Solver solver.Options
}

// Query is one assumption-based request against a warm session.
type Query struct {
	// Mode is the query direction (Verify or Witness).
	Mode smtbe.Mode
	// T is the horizon, 1..capacity.
	T int
	// Extra adds retractable per-query constraints (e.g. tweaked
	// workload bounds) as assumptions. Terms must come from Builder().
	Extra []*term.Term
	// Progress, when non-nil, receives live search counters for this
	// query only (the service attaches the requesting job's).
	Progress *sat.Progress
}

// Session is a warm solver session. All methods are safe for concurrent
// use; queries serialize on an internal lock (the solver is
// single-threaded), so concurrent holders simply queue.
type Session struct {
	mu   sync.Mutex
	info *typecheck.Info
	sv   *solver.Solver
	m    *ir.Machine
	opts Options

	steps    int // steps unrolled so far
	asserted int // semantic assumes asserted so far

	closed  atomic.Bool
	queries atomic.Int64
}

// New builds a warm session for the program with the given capacity
// (opts.IR.T). The encoding is built lazily: steps unroll on demand as
// queries need them. Returns ErrConstHorizon when the program's use of T
// forces per-horizon compilation.
func New(info *typecheck.Info, opts Options) (*Session, error) {
	if opts.IR.T < 1 {
		opts.IR.T = 1
	}
	if ir.ScanHorizon(info) == ir.HorizonConst {
		return nil, ErrConstHorizon
	}
	opts.IR.SymbolicT = true
	sv := solver.New(opts.Solver)
	m, err := ir.NewMachine(info, sv.Builder(), opts.IR)
	if err != nil {
		return nil, err
	}
	return &Session{info: info, sv: sv, m: m, opts: opts}, nil
}

// MaxT returns the session's capacity horizon.
func (s *Session) MaxT() int { return s.opts.IR.T }

// Queries returns how many queries the session has answered.
func (s *Session) Queries() int64 { return s.queries.Load() }

// Builder returns the session's term builder, for constructing Extra
// query assumptions.
func (s *Session) Builder() *term.Builder { return s.sv.Builder() }

// Close marks the session closed (pool eviction). A query already solving
// runs to completion; every later Solve returns ErrClosed. Close never
// blocks on an in-flight solve.
func (s *Session) Close() { s.closed.Store(true) }

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool { return s.closed.Load() }

// Footprint estimates the session's memory in bytes: the learnt-clause
// database plus the problem encoding. The pool charges this against its
// budget and re-reads it after queries, since the learnt DB grows as the
// session works.
func (s *Session) Footprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.footprintLocked()
}

func (s *Session) footprintLocked() int64 {
	// ~48 bytes per problem clause (header + few literals) and ~16 per
	// SAT variable (assignment, activity, watch headers) — the same
	// order of estimate sat uses for learnt clauses.
	return s.sv.Stats().LearntBytes +
		int64(s.sv.NumClauses())*48 + int64(s.sv.NumVars())*16
}

// ensureLocked deepens the unrolling to k steps, asserting the new
// semantic constraints permanently (they define the machine's behavior
// and are mode- and horizon-independent).
func (s *Session) ensureLocked(ctx context.Context, k int) error {
	for s.steps < k {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.m.RunStep(s.steps); err != nil {
			return err
		}
		s.steps++
		assumes := s.m.Assumes()
		for ; s.asserted < len(assumes); s.asserted++ {
			s.sv.Assert(assumes[s.asserted])
		}
	}
	return nil
}

// Solve answers one query on the warm encoding. The horizon guard and
// the query term ride as assumptions, so nothing sticks to the solver
// and the next query — any mode, any horizon — reuses everything the
// search learnt.
func (s *Session) Solve(ctx context.Context, q Query) (*smtbe.Result, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if q.T < 1 {
		return nil, fmt.Errorf("session: horizon %d out of range", q.T)
	}
	if q.T > s.opts.IR.T {
		return nil, ErrHorizon
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: an eviction may have landed while a
	// previous holder's query had the session busy.
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.ensureLocked(ctx, q.T); err != nil {
		return nil, err
	}
	c := s.m.Result()
	n := 0
	for _, a := range c.Asserts {
		if a.Step < q.T {
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("smtbe: program %s has no assert() — nothing to check", s.info.Prog.Name)
	}
	b := s.sv.Builder()
	var query *term.Term
	switch q.Mode {
	case smtbe.Witness:
		query = b.And(c.AssertHoldsUpTo(q.T), c.AssertReachedUpTo(q.T))
	default:
		query = c.ViolationUpTo(q.T)
	}
	assumptions := make([]*term.Term, 0, 2+len(q.Extra))
	assumptions = append(assumptions, b.Eq(s.m.TVar(), b.IntConst(int64(q.T))), query)
	assumptions = append(assumptions, q.Extra...)

	if q.Progress != nil {
		s.sv.SetProgress(q.Progress)
		defer s.sv.SetProgress(s.opts.Solver.Progress)
	}
	outcome := s.sv.CheckAssumingContext(ctx, assumptions...)
	s.queries.Add(1)

	ct := c.TruncatedTo(q.T)
	res := &smtbe.Result{
		Mode: q.Mode, Compiled: ct, Solver: s.sv,
		SatStats:   s.sv.Stats(),
		NumClauses: s.sv.NumClauses(), NumVars: s.sv.NumVars(),
	}
	switch {
	case outcome == solver.Unknown:
		res.Status = smtbe.Unknown
		res.Stop = s.sv.StopReason()
	case outcome == solver.Sat && q.Mode == smtbe.Verify:
		res.Status = smtbe.CounterexampleFound
	case outcome == solver.Unsat && q.Mode == smtbe.Verify:
		res.Status = smtbe.Holds
	case outcome == solver.Sat && q.Mode == smtbe.Witness:
		res.Status = smtbe.WitnessFound
	default:
		res.Status = smtbe.NoWitness
	}
	if outcome == solver.Sat {
		// The model covers the full unrolling; the truncated compilation
		// restricts extraction to the first q.T steps, so the trace never
		// reads the unconstrained tail.
		res.Trace = smtbe.ExtractTrace(ct, s.sv)
	}
	res.Duration = time.Since(start)
	if res.Status == smtbe.Unknown && ctx.Err() != nil {
		return res, ctx.Err()
	}
	return res, nil
}
