// Package bench holds the benchmark-trajectory schema and the
// noise-aware comparison logic behind the perf regression gate:
// cmd/buffy-bench writes a Trajectory (one summarized probe per
// experiment, repeat-run median/IQR plus deterministic work counters),
// and cmd/buffy-benchdiff diffs two of them, gating work counters hard
// and wall-clock softly.
//
// The split matters because the two metric families degrade differently
// across machines. Solver work counters (conflicts, propagations,
// learnt clauses) from a single-configuration CDCL solve with fixed
// seeds are machine-independent: any change is a real change in search
// behavior, so they gate at a tight threshold everywhere, including CI
// runners that share nothing with the machine that wrote the baseline.
// Wall-clock medians are only comparable on the same machine class, so
// they gate only when the run fingerprints match, and only when the
// delta clears both a relative threshold and an IQR-scaled noise bar.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// TrajectorySchema versions the BENCH_trajectory.json layout. Bump on
// renames or semantic changes; additions that old readers ignore are
// fine without one.
const TrajectorySchema = 1

// Experiment is one probe's summary across repeat runs.
type Experiment struct {
	Name     string    `json:"name"`
	RunsMS   []float64 `json:"runs_ms"`
	MedianMS float64   `json:"median_ms"`
	IQRMS    float64   `json:"iqr_ms"`
	// Work holds machine-independent solver effort counters
	// (conflicts, propagations, ...) when the probe is a deterministic
	// single-config solve; nil for wall-clock-only probes.
	Work map[string]int64 `json:"work,omitempty"`
	// Deterministic reports that every repeat produced identical Work
	// counters, which is what licenses the hard cross-machine gate. A
	// probe that claims determinism but measures drift is recorded
	// false and falls back to the soft time gate.
	Deterministic bool `json:"deterministic"`
	// TimeOnly marks probes whose only meaningful metric is wall clock
	// (analytical bounds, portfolio races, end-to-end pipelines).
	TimeOnly bool `json:"time_only"`
	// Advisory marks probes that are tracked for the record but never
	// gated: a first-conclusive-answer-wins portfolio race has
	// intrinsically nondeterministic wall clock (which config wins
	// varies run to run), so no threshold separates regression from
	// luck. benchdiff reports their drift as a note.
	Advisory bool `json:"advisory,omitempty"`
}

// Trajectory is the BENCH_trajectory.json file: one benchmark run's
// summarized probes plus enough provenance to decide how comparable a
// later run is.
type Trajectory struct {
	Schema      int          `json:"schema"`
	CreatedUnix int64        `json:"created_unix"`
	GitRev      string       `json:"git_rev,omitempty"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	OS          string       `json:"os"`
	Arch        string       `json:"arch"`
	Repeats     int          `json:"repeats"`
	Experiments []Experiment `json:"experiments"`
}

// FingerprintMatch reports whether two trajectories came from
// comparable machines, the precondition for gating wall-clock medians.
func (t *Trajectory) FingerprintMatch(o *Trajectory) bool {
	return t.GoVersion == o.GoVersion && t.GOMAXPROCS == o.GOMAXPROCS &&
		t.OS == o.OS && t.Arch == o.Arch
}

// Load reads and decodes a trajectory file.
func Load(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.Schema != TrajectorySchema {
		return nil, fmt.Errorf("%s: trajectory schema %d, this build reads %d", path, t.Schema, TrajectorySchema)
	}
	return &t, nil
}

// MedianIQR summarizes repeat-run timings: the median is the headline
// number, the interquartile range is the noise bar the time gate scales
// by. Quartiles use linear interpolation between order statistics.
func MedianIQR(vals []float64) (median, iqr float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return quantile(s, 0.5), quantile(s, 0.75) - quantile(s, 0.25)
}

func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
