package bench

import "fmt"

// DiffOptions tunes the regression gate's thresholds. Zero values are
// replaced by the defaults below, so a zero DiffOptions is the CI gate.
type DiffOptions struct {
	// MaxWorkRegress is the allowed relative growth of a deterministic
	// work counter before it is a regression (0.30 = +30%).
	MaxWorkRegress float64
	// MaxTimeRegress is the allowed relative growth of a wall-clock
	// median (0.50 = +50%), applied only when fingerprints match.
	MaxTimeRegress float64
	// MinTimeMS floors the time gate: medians below it are too close to
	// scheduler noise to gate at any ratio.
	MinTimeMS float64
	// IQRMult scales the noise bar: a time delta must also exceed
	// IQRMult x max(old IQR, new IQR) to count.
	IQRMult float64
	// MinWork floors the work gate: counters below it (a handful of
	// restarts, say) flip large ratios on tiny absolute changes.
	MinWork int64
	// IgnoreTime disables the wall-clock gate entirely, leaving only
	// the deterministic work counters.
	IgnoreTime bool
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.MaxWorkRegress == 0 {
		o.MaxWorkRegress = 0.30
	}
	if o.MaxTimeRegress == 0 {
		o.MaxTimeRegress = 0.50
	}
	if o.MinTimeMS == 0 {
		o.MinTimeMS = 20
	}
	if o.IQRMult == 0 {
		o.IQRMult = 3
	}
	if o.MinWork == 0 {
		o.MinWork = 500
	}
	return o
}

// Finding is one gated metric that regressed past its threshold.
type Finding struct {
	Exp    string  // experiment name
	Metric string  // "median_ms", a work counter key, or "presence"
	Old    float64 // baseline value
	New    float64 // candidate value
	Limit  float64 // the threshold the candidate crossed
}

func (f Finding) String() string {
	if f.Metric == "presence" {
		return fmt.Sprintf("%s: experiment missing from candidate run", f.Exp)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (limit %.6g, %+.1f%%)",
		f.Exp, f.Metric, f.Old, f.New, f.Limit, 100*(f.New-f.Old)/f.Old)
}

// Diff compares a baseline trajectory against a candidate and returns
// the regressions that should fail the build, plus advisory notes for
// everything observed but deliberately not gated (fingerprint
// mismatches, sub-floor counters, non-deterministic probes, new
// experiments). An experiment present in the baseline but absent from
// the candidate is itself a regression: silently dropping a probe would
// otherwise shrink coverage for free.
func Diff(base, cand *Trajectory, opts DiffOptions) (regressions []Finding, notes []string) {
	opts = opts.withDefaults()
	timeGate := !opts.IgnoreTime
	if timeGate && !base.FingerprintMatch(cand) {
		timeGate = false
		notes = append(notes, fmt.Sprintf(
			"machine fingerprints differ (%s/%s go%s P=%d vs %s/%s go%s P=%d): wall-clock medians are advisory, only deterministic work counters gate",
			base.OS, base.Arch, base.GoVersion, base.GOMAXPROCS,
			cand.OS, cand.Arch, cand.GoVersion, cand.GOMAXPROCS))
	}

	candByName := make(map[string]Experiment, len(cand.Experiments))
	for _, e := range cand.Experiments {
		candByName[e.Name] = e
	}
	seen := make(map[string]bool, len(base.Experiments))

	for _, b := range base.Experiments {
		seen[b.Name] = true
		c, ok := candByName[b.Name]
		if !ok {
			regressions = append(regressions, Finding{Exp: b.Name, Metric: "presence"})
			continue
		}

		// Advisory probes (intrinsically nondeterministic wall clocks
		// like portfolio races) are tracked, never gated: dropping one
		// is still a presence regression above, but its numbers only
		// inform.
		if b.Advisory || c.Advisory {
			if b.MedianMS > 0 {
				notes = append(notes, fmt.Sprintf(
					"%s: advisory probe, median %.1fms -> %.1fms (%+.1f%%), not gated",
					b.Name, b.MedianMS, c.MedianMS, 100*(c.MedianMS-b.MedianMS)/b.MedianMS))
			}
			continue
		}

		// Work counters: hard gate, but only when both sides proved
		// determinism — a counter that drifts between repeats carries
		// the same noise as a timing and must not gate tightly.
		if b.Deterministic && c.Deterministic {
			for _, key := range sortedWorkKeys(b.Work) {
				oldV := b.Work[key]
				newV, ok := c.Work[key]
				if !ok {
					regressions = append(regressions, Finding{
						Exp: b.Name, Metric: key, Old: float64(oldV), New: 0,
						Limit: float64(oldV)})
					continue
				}
				if oldV < opts.MinWork {
					if newV > oldV {
						notes = append(notes, fmt.Sprintf(
							"%s: %s %d -> %d below work floor %d, not gated",
							b.Name, key, oldV, newV, opts.MinWork))
					}
					continue
				}
				limit := float64(oldV) * (1 + opts.MaxWorkRegress)
				if float64(newV) > limit {
					regressions = append(regressions, Finding{
						Exp: b.Name, Metric: key,
						Old: float64(oldV), New: float64(newV), Limit: limit})
				}
			}
		} else if len(b.Work) > 0 || len(c.Work) > 0 {
			notes = append(notes, fmt.Sprintf(
				"%s: work counters not deterministic on both sides, time gate only", b.Name))
		}

		// Wall clock: soft gate. The delta must clear the relative
		// threshold AND the IQR noise bar AND the absolute floor.
		if timeGate && b.MedianMS >= opts.MinTimeMS {
			limit := b.MedianMS * (1 + opts.MaxTimeRegress)
			noise := opts.IQRMult * maxF(b.IQRMS, c.IQRMS)
			if c.MedianMS > limit && c.MedianMS-b.MedianMS > noise {
				regressions = append(regressions, Finding{
					Exp: b.Name, Metric: "median_ms",
					Old: b.MedianMS, New: c.MedianMS, Limit: maxF(limit, b.MedianMS+noise)})
			}
		}
	}

	for _, c := range cand.Experiments {
		if !seen[c.Name] {
			notes = append(notes, fmt.Sprintf("%s: new experiment, no baseline to compare", c.Name))
		}
	}
	return regressions, notes
}

func sortedWorkKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
