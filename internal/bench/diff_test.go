package bench

import (
	"math"
	"strings"
	"testing"
)

func baseTrajectory() *Trajectory {
	return &Trajectory{
		Schema: TrajectorySchema, GoVersion: "go1.22", GOMAXPROCS: 8,
		NumCPU: 8, OS: "linux", Arch: "amd64", Repeats: 3,
		Experiments: []Experiment{
			{
				Name: "cs1-fq-witness", RunsMS: []float64{400, 410, 420},
				MedianMS: 410, IQRMS: 10, Deterministic: true,
				Work: map[string]int64{"conflicts": 4000, "propagations": 3_000_000, "restarts": 20},
			},
			{
				Name: "portfolio-wall", RunsMS: []float64{300, 350, 400},
				MedianMS: 350, IQRMS: 50, TimeOnly: true,
			},
		},
	}
}

// clone deep-copies a trajectory so tests can perturb one side.
func clone(t *Trajectory) *Trajectory {
	c := *t
	c.Experiments = append([]Experiment(nil), t.Experiments...)
	for i := range c.Experiments {
		w := make(map[string]int64, len(t.Experiments[i].Work))
		for k, v := range t.Experiments[i].Work {
			w[k] = v
		}
		if len(w) == 0 {
			w = nil
		}
		c.Experiments[i].Work = w
		c.Experiments[i].RunsMS = append([]float64(nil), t.Experiments[i].RunsMS...)
	}
	return &c
}

func TestDiffIdenticalPasses(t *testing.T) {
	base := baseTrajectory()
	reg, _ := Diff(base, clone(base), DiffOptions{})
	if len(reg) != 0 {
		t.Fatalf("identical trajectories regressed: %v", reg)
	}
}

func TestDiffWorkRegressionFails(t *testing.T) {
	base := baseTrajectory()
	cand := clone(base)
	// +40% conflicts on a deterministic probe: past the 30% gate.
	cand.Experiments[0].Work["conflicts"] = 5600
	reg, _ := Diff(base, cand, DiffOptions{})
	if len(reg) != 1 || reg[0].Metric != "conflicts" || reg[0].Exp != "cs1-fq-witness" {
		t.Fatalf("want one conflicts regression, got %v", reg)
	}
	if got := reg[0].String(); !strings.Contains(got, "conflicts") {
		t.Fatalf("finding renders without the metric: %q", got)
	}
}

func TestDiffWorkWithinThresholdPasses(t *testing.T) {
	base := baseTrajectory()
	cand := clone(base)
	cand.Experiments[0].Work["conflicts"] = 5000 // +25% < 30%
	if reg, _ := Diff(base, cand, DiffOptions{}); len(reg) != 0 {
		t.Fatalf("+25%% work should pass, got %v", reg)
	}
}

func TestDiffSmallCounterNotGated(t *testing.T) {
	base := baseTrajectory()
	cand := clone(base)
	// restarts 20 -> 40 is +100% but below the MinWork floor: a note,
	// not a regression.
	cand.Experiments[0].Work["restarts"] = 40
	reg, notes := Diff(base, cand, DiffOptions{})
	if len(reg) != 0 {
		t.Fatalf("sub-floor counter gated: %v", reg)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "restarts") && strings.Contains(n, "floor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sub-floor drift not noted: %v", notes)
	}
}

func TestDiffMissingExperimentIsRegression(t *testing.T) {
	base := baseTrajectory()
	cand := clone(base)
	cand.Experiments = cand.Experiments[:1] // drop portfolio-wall
	reg, _ := Diff(base, cand, DiffOptions{})
	if len(reg) != 1 || reg[0].Metric != "presence" || reg[0].Exp != "portfolio-wall" {
		t.Fatalf("want presence regression for portfolio-wall, got %v", reg)
	}
}

func TestDiffMissingCounterIsRegression(t *testing.T) {
	base := baseTrajectory()
	cand := clone(base)
	delete(cand.Experiments[0].Work, "propagations")
	reg, _ := Diff(base, cand, DiffOptions{})
	if len(reg) != 1 || reg[0].Metric != "propagations" {
		t.Fatalf("want propagations-missing regression, got %v", reg)
	}
}

func TestDiffTimeGate(t *testing.T) {
	base := baseTrajectory()

	// Past the relative threshold and the noise bar: regression.
	cand := clone(base)
	cand.Experiments[1].MedianMS = 900 // +157%, delta 550 > 3*50
	reg, _ := Diff(base, cand, DiffOptions{})
	if len(reg) != 1 || reg[0].Metric != "median_ms" {
		t.Fatalf("want median_ms regression, got %v", reg)
	}

	// Same ratio but inside the IQR noise bar: not gated.
	cand = clone(base)
	cand.Experiments[1].MedianMS = 900
	cand.Experiments[1].IQRMS = 400 // noise bar 3*400 swallows the delta
	if reg, _ := Diff(base, cand, DiffOptions{}); len(reg) != 0 {
		t.Fatalf("delta inside noise bar gated: %v", reg)
	}

	// -ignore-time: never gated.
	cand = clone(base)
	cand.Experiments[1].MedianMS = 900
	if reg, _ := Diff(base, cand, DiffOptions{IgnoreTime: true}); len(reg) != 0 {
		t.Fatalf("-ignore-time still gated: %v", reg)
	}
}

func TestDiffFingerprintMismatchMakesTimeAdvisory(t *testing.T) {
	base := baseTrajectory()
	cand := clone(base)
	cand.GoVersion = "go1.23"
	cand.Experiments[1].MedianMS = 2000
	// Work regression must still gate cross-machine.
	cand.Experiments[0].Work["conflicts"] = 9000
	reg, notes := Diff(base, cand, DiffOptions{})
	if len(reg) != 1 || reg[0].Metric != "conflicts" {
		t.Fatalf("want only the work regression cross-machine, got %v", reg)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "fingerprints differ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fingerprint mismatch not noted: %v", notes)
	}
}

func TestDiffNondeterministicWorkNotGated(t *testing.T) {
	base := baseTrajectory()
	base.Experiments[0].Deterministic = false
	cand := clone(base)
	cand.Experiments[0].Work["conflicts"] = 9000
	reg, notes := Diff(base, cand, DiffOptions{})
	if len(reg) != 0 {
		t.Fatalf("non-deterministic work gated: %v", reg)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "not deterministic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing non-determinism note: %v", notes)
	}
}

func TestDiffAdvisoryNeverGates(t *testing.T) {
	base := baseTrajectory()
	base.Experiments[1].Advisory = true
	cand := clone(base)
	cand.Experiments[1].MedianMS = 5000 // wildly slower, still only a note
	reg, notes := Diff(base, cand, DiffOptions{})
	if len(reg) != 0 {
		t.Fatalf("advisory probe gated: %v", reg)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "advisory probe") {
			found = true
		}
	}
	if !found {
		t.Fatalf("advisory drift not noted: %v", notes)
	}

	// Dropping an advisory probe is still a coverage regression.
	cand = clone(base)
	cand.Experiments = cand.Experiments[:1]
	if reg, _ := Diff(base, cand, DiffOptions{}); len(reg) != 1 || reg[0].Metric != "presence" {
		t.Fatalf("dropped advisory probe not flagged: %v", reg)
	}
}

func TestMedianIQR(t *testing.T) {
	med, iqr := MedianIQR([]float64{400, 410, 420})
	if med != 410 || iqr != 10 {
		t.Fatalf("median/iqr of {400,410,420} = %v/%v, want 410/10", med, iqr)
	}
	med, iqr = MedianIQR([]float64{7})
	if med != 7 || iqr != 0 {
		t.Fatalf("single sample: %v/%v, want 7/0", med, iqr)
	}
	med, _ = MedianIQR([]float64{1, 2, 3, 4})
	if math.Abs(med-2.5) > 1e-9 {
		t.Fatalf("even-length median %v, want 2.5", med)
	}
	if med, _ := MedianIQR(nil); med != 0 {
		t.Fatalf("empty median %v, want 0", med)
	}
}
