package ir

import (
	"testing"

	"buffy/internal/smt/solver"
)

func scan(t *testing.T, src string) HorizonUse {
	t.Helper()
	return ScanHorizon(load(t, src))
}

func TestScanHorizon(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want HorizonUse
	}{
		{"no-use", `p(buffer a, buffer b) {
			move-p(a, b, 1);
			assert(backlog-p(a) >= 0);
		}`, HorizonNone},
		{"t-only", `p(buffer a, buffer b) {
			move-p(a, b, 1);
			if (t == 2) { assert(backlog-p(b) <= 3); }
		}`, HorizonNone},
		{"guarded-query", `p(buffer a, buffer b) {
			monitor int c;
			move-p(a, b, 1);
			c = c + 1;
			if (t == T - 1) { assert(c <= T); }
		}`, HorizonTerm},
		{"assert-arith", `p(buffer a, buffer b) {
			move-p(a, b, 1);
			assert(backlog-p(b) <= T * 2);
		}`, HorizonTerm},
		{"loop-bound", `p(buffer a, buffer b) {
			global int total;
			for (i in 0..T) do { total = total + 1; }
			move-p(a, b, 1);
			assert(total >= 0);
		}`, HorizonConst},
		{"array-size", `p(buffer a, buffer b) {
			global int[T] slots;
			move-p(a, b, 1);
			slots[0] = 1;
			assert(slots[0] == 1);
		}`, HorizonConst},
		{"division", `p(buffer a, buffer b) {
			local int half;
			half = T / 2;
			move-p(a, b, 1);
			assert(backlog-p(b) >= 0);
		}`, HorizonConst},
		// Const use dominates: the program also reads T in a guard, but
		// the loop bound is what forces per-horizon compilation.
		{"mixed", `p(buffer a, buffer b) {
			global int total;
			for (i in 0..T) do { total = total + 1; }
			move-p(a, b, 1);
			if (t == T - 1) { assert(total >= 0); }
		}`, HorizonConst},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := scan(t, tc.src); got != tc.want {
				t.Fatalf("ScanHorizon = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSymbolicTConstPositionRejected: compiling with SymbolicT when T
// appears in a constant position must fail loudly, not mis-encode.
func TestSymbolicTConstPositionRejected(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global int total;
		for (i in 0..T) do { total = total + 1; }
		move-p(a, b, 1);
		assert(total >= 0);
	}`
	sv := solver.New(solver.Options{})
	_, cerr := Compile(load(t, src), sv.Builder(), Options{T: 3, SymbolicT: true})
	if cerr == nil {
		t.Fatal("Compile with SymbolicT should reject T in a loop bound")
	}
}
