package ir

import (
	"strings"
	"testing"

	"buffy/internal/buffer"
	"buffy/internal/lang/parser"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

func load(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func compile(t *testing.T, src string, opts Options) (*Compiled, *solver.Solver) {
	t.Helper()
	sv := solver.New(solver.Options{})
	c, err := Compile(load(t, src), sv.Builder(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, sv
}

// prove checks that prop holds on every execution of the compiled program.
func prove(t *testing.T, c *Compiled, sv *solver.Solver, prop *term.Term, what string) {
	t.Helper()
	for _, a := range c.Assumes {
		sv.Assert(a)
	}
	sv.Assert(c.B.Not(prop))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("%s violated (%v)", what, got)
	}
}

func TestMissingParam(t *testing.T) {
	sv := solver.New(solver.Options{})
	_, err := Compile(load(t, `p(buffer[N] a, buffer b) { move-p(a[0], b, 1); }`),
		sv.Builder(), Options{T: 1})
	if err == nil || !strings.Contains(err.Error(), `parameter "N"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestConstantBufferIndexOutOfRange(t *testing.T) {
	sv := solver.New(solver.Options{})
	_, err := Compile(load(t, `p(buffer[N] a, buffer b) { move-p(a[5], b, 1); }`),
		sv.Builder(), Options{T: 1, Params: map[string]int64{"N": 2}})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeIndexOutOfRangeIsNullBuffer(t *testing.T) {
	// head = 5 is out of range at run time: backlog reads 0, move is a
	// no-op — no error, matching the interpreter.
	src := `p(buffer[N] a, buffer b) {
		local int head; local int n;
		head = 5;
		n = backlog-p(a[head]);
		move-p(a[head], b, 1);
		assert(n == 0);
		assert(backlog-p(b) == 0);
	}`
	c, sv := compile(t, src, Options{T: 1, Params: map[string]int64{"N": 2}})
	prove(t, c, sv, c.AssertHolds(), "null-buffer semantics")
}

func TestArrayOutOfRangeSemantics(t *testing.T) {
	// Out-of-range reads give 0; out-of-range writes are dropped.
	src := `p(buffer a, buffer b) {
		local int[3] arr; local int i; local int x;
		i = 7;
		arr[i] = 42;
		x = arr[i];
		assert(x == 0);
		arr[1] = 9;
		assert(arr[1] == 9);
		move-p(a, b, 1);
	}`
	c, sv := compile(t, src, Options{T: 1})
	prove(t, c, sv, c.AssertHolds(), "array bounds semantics")
}

func TestGlobalInitializer(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global int g = W * 2 + 1;
		assert(g >= 7);
		g = g + 1;
		move-p(a, b, 1);
	}`
	c, sv := compile(t, src, Options{T: 2, Params: map[string]int64{"W": 3}})
	prove(t, c, sv, c.AssertHolds(), "initializer")
}

func TestLoopUnrollBoundExceeded(t *testing.T) {
	sv := solver.New(solver.Options{})
	_, err := Compile(load(t, `p(buffer a, buffer b) { local int x; for (i in 0..M) { x = x + 1; } move-p(a,b,1); }`),
		sv.Builder(), Options{T: 1, Params: map[string]int64{"M": 5000}})
	if err == nil || !strings.Contains(err.Error(), "unrolls") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedLoopsWithDependentBounds(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int total;
		for (i in 0..3) {
			for (j in 0..i) { total = total + 1; }
		}
		assert(total == 3);
		move-p(a, b, 1);
	}`
	c, sv := compile(t, src, Options{T: 1})
	prove(t, c, sv, c.AssertHolds(), "triangular loop count")
}

func TestCountModelRejectsFilterUse(t *testing.T) {
	sv := solver.New(solver.Options{})
	_, err := Compile(load(t, `p(buffer a, buffer b) {
		local int n;
		n = backlog-p(a |> flow == 1);
		move-p(a, b, n);
	}`), sv.Builder(), Options{T: 1, Model: buffer.CountModel{}})
	if err == nil || !strings.Contains(err.Error(), "cannot evaluate filters") {
		t.Fatalf("err = %v", err)
	}
}

func TestChainedFilterNeedsListModel(t *testing.T) {
	src := `p(buffer a, buffer b) {
		fields flow, prio;
		local int n;
		n = backlog-p(a |> flow == 1 |> prio == 0);
		move-p(a, b, n);
		assert(n >= 0);
	}`
	// List model: fine.
	c, sv := compile(t, src, Options{T: 1})
	prove(t, c, sv, c.AssertHolds(), "chained filters on list model")
	// Multiclass: rejected.
	sv2 := solver.New(solver.Options{})
	_, err := Compile(load(t, src), sv2.Builder(), Options{T: 1, Model: buffer.MultiClassModel{}})
	if err == nil {
		t.Fatal("multiclass should reject chained filters")
	}
}

func TestTimeBuiltins(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global int steps;
		steps = steps + 1;
		assert(steps == t + 1);
		if (t == T - 1) { assert(steps == T); }
		move-p(a, b, 1);
	}`
	c, sv := compile(t, src, Options{T: 5})
	prove(t, c, sv, c.AssertHolds(), "t/T builtins")
}

func TestArrivalSlotSymmetryBreaking(t *testing.T) {
	// Slot k valid implies slot k-1 valid.
	src := `p(buffer a, buffer b) { move-p(a, b, 1); assert(true); }`
	c, sv := compile(t, src, Options{T: 1, ArrivalsPerStep: 3})
	for _, a := range c.Assumes {
		sv.Assert(a)
	}
	b := c.B
	if len(c.Arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(c.Arrivals))
	}
	// slot2 valid && !slot1 valid must be infeasible.
	sv.Assert(c.Arrivals[2].Valid)
	sv.Assert(b.Not(c.Arrivals[1].Valid))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("symmetry breaking missing: %v", got)
	}
}

func TestOutputAccumulatesAcrossSteps(t *testing.T) {
	src := `p(buffer a, buffer b) { move-p(a, b, backlog-p(a)); assert(true); }`
	c, sv := compile(t, src, Options{T: 3})
	for _, a := range c.Assumes {
		sv.Assert(a)
	}
	b := c.B
	ctx := &buffer.Ctx{B: b, Assume: func(*term.Term) {}}
	// Arrivals every step: output backlog at end = 3.
	for _, a := range c.Arrivals {
		sv.Assert(a.Valid)
	}
	out := c.Steps[2].Buffers["b"].BacklogP(ctx)
	sv.Assert(b.Neq(out, b.IntConst(3)))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("output accumulation wrong: %v", got)
	}
}

func TestSnapshotsPerStep(t *testing.T) {
	src := `p(buffer a, buffer b) { global int g; g = g + 2; move-p(a, b, 1); assert(true); }`
	c, sv := compile(t, src, Options{T: 3})
	_ = sv
	if len(c.Steps) != 3 {
		t.Fatalf("steps = %d", len(c.Steps))
	}
	for i, snap := range c.Steps {
		g := snap.Vars["g"]
		if g.Kind() != term.KindIntConst || g.IntVal() != int64(2*(i+1)) {
			t.Errorf("step %d: g = %s, want %d", i, g, 2*(i+1))
		}
	}
}

func TestHavocRecorded(t *testing.T) {
	src := `p(buffer a, buffer b) {
		local int x; local bool q;
		havoc x;
		havoc q;
		assume(x >= 0);
		move-p(a, b, x);
		assert(true);
	}`
	c, _ := compile(t, src, Options{T: 2})
	if len(c.Havocs) != 4 {
		t.Fatalf("havocs = %d, want 4 (2 per step)", len(c.Havocs))
	}
	if c.Havocs[0].Name != "x" || c.Havocs[1].Name != "q" {
		t.Errorf("havoc order: %v, %v", c.Havocs[0].Name, c.Havocs[1].Name)
	}
	if c.Havocs[1].Var.Sort() != term.Bool {
		t.Error("bool havoc should be boolean-sorted")
	}
}

func TestPopFromEmptyListYieldsZero(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global list l;
		local int x;
		x = 99;
		x = l.pop_front();
		assert(x == 0);
		assert(l.empty());
		move-p(a, b, 1);
	}`
	c, sv := compile(t, src, Options{T: 1})
	prove(t, c, sv, c.AssertHolds(), "empty pop semantics")
}

func TestListOverflowDropsSilently(t *testing.T) {
	src := `p(buffer a, buffer b) {
		global list l;
		for (i in 0..10) { l.push_back(i); }
		assert(l.size() == 4);
		assert(l.has(3));
		assert(!l.has(4));
		move-p(a, b, 1);
	}`
	c, sv := compile(t, src, Options{T: 1, ListCap: 4})
	prove(t, c, sv, c.AssertHolds(), "list capacity clamp")
}

func readOnlyCtx(b *term.Builder) *buffer.Ctx {
	return &buffer.Ctx{B: b, Assume: func(*term.Term) {}}
}

// Moves where BOTH endpoints are symbolically indexed case-split over the
// full cross product of instances.
func TestSymbolicSrcAndDstMove(t *testing.T) {
	src := `p(in buffer[2] a, out buffer[2] outs) {
		local int i; local int j;
		havoc i;
		havoc j;
		assume(i >= 0); assume(i <= 1);
		assume(j >= 0); assume(j <= 1);
		move-p(a[i], outs[j], 1);
		assert(backlog-p(outs[0]) + backlog-p(outs[1]) <= t + 1);
	}`
	c, sv := compile(t, src, Options{T: 2})
	prove(t, c, sv, c.AssertHolds(), "cross-product move")
}

// A move between overlapping symbolic references that aliases the same
// instance at run time is a no-op rather than corruption.
func TestAliasedSymbolicMoveIsNoop(t *testing.T) {
	src := `p(in buffer[2] a, out buffer ob) {
		local int i; local int j;
		i = 0;
		havoc j;
		assume(j == 0);
		move-p(a[i], a[j], 1);
		move-p(a[0], ob, backlog-p(a[0]));
		assert(backlog-p(a[1]) >= 0);
	}`
	c, sv := compile(t, src, Options{T: 1})
	for _, a := range c.Assumes {
		sv.Assert(a)
	}
	b := c.B
	ctx := readOnlyCtx(b)
	// With one arrival at a[0], the self-move must not lose the packet:
	// it ends up in ob via the second move.
	for _, arr := range c.Arrivals {
		if arr.Buffer == "a[0]" {
			sv.Assert(arr.Valid)
		} else {
			sv.Assert(b.Not(arr.Valid))
		}
	}
	ob := c.Steps[0].Buffers["ob"].BacklogP(ctx)
	sv.Assert(b.Neq(ob, b.IntConst(1)))
	if got := sv.Check(); got != solver.Unsat {
		t.Fatalf("self-move lost or duplicated a packet: %v", got)
	}
}
