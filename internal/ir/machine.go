package ir

import (
	"fmt"

	"buffy/internal/buffer"
	"buffy/internal/lang/ast"
	tok "buffy/internal/lang/token"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/term"
)

// listVal is a Buffy list lowered to bounded scalar slots (array
// flattening, §7). Slot 0 is the front.
type listVal struct {
	elems []*term.Term
	size  *term.Term
}

// Machine symbolically executes one Buffy program step by step. All state
// lives in term-land; the machine is the paper's "one time step" semantics
// made executable over symbolic values.
type Machine struct {
	info *typecheck.Info
	opts Options
	b    *term.Builder
	ctx  *buffer.Ctx

	// scalar state: globals, locals, monitors (name or name[i]).
	vars map[string]*term.Term
	// array sizes by variable name.
	arraySize map[string]int64
	lists     map[string]*listVal
	// buffer instances in declaration order; bufIdx resolves names.
	bufNames []string
	bufs     map[string]buffer.State
	// bufParam maps a parameter name to its instance names (len 1 for
	// scalars, N for buffer arrays).
	bufInstances map[string][]string

	step     int
	havocSeq int
	havocs   []HavocVar
	tvar     *term.Term // value of builtin T under Options.SymbolicT
	curT     *term.Term // value of builtin t during the current step
	guard    *term.Term // current path condition
	assumes  []*term.Term
	asserts  []AssertInst
	arrivals []Arrival
	steps    []StepSnapshot

	inputNames  []string
	outputNames []string

	prefix string
}

func pos(p tok.Pos) Pos { return Pos{Line: p.Line, Col: p.Col} }

// NewMachine creates a machine with empty initial state.
func NewMachine(info *typecheck.Info, b *term.Builder, opts Options) (*Machine, error) {
	m := &Machine{
		info:         info,
		b:            b,
		vars:         make(map[string]*term.Term),
		arraySize:    make(map[string]int64),
		lists:        make(map[string]*listVal),
		bufs:         make(map[string]buffer.State),
		bufInstances: make(map[string][]string),
		prefix:       info.Prog.Name,
	}
	if opts.NamePrefix != "" {
		m.prefix = opts.NamePrefix
	}

	// Validate parameters.
	for _, p := range info.Params {
		if _, ok := opts.Params[p]; !ok {
			return nil, fmt.Errorf("ir: program %s needs a value for compile-time parameter %q", info.Prog.Name, p)
		}
	}

	// Instantiate buffers.
	numInputs := 0
	for _, bp := range info.Prog.Params {
		n := int64(1)
		if bp.Size != nil {
			var err error
			n, err = m.constEvalEarly(bp.Size, opts.Params)
			if err != nil {
				return nil, err
			}
			if n <= 0 || n > 64 {
				return nil, fmt.Errorf("ir: buffer array %s size %d out of range (1..64)", bp.Name, n)
			}
		}
		if bp.Dir == ast.DirIn {
			numInputs += int(n)
		}
	}
	m.opts = opts.withDefaults(numInputs)
	if m.opts.SymbolicT {
		m.tvar = b.Var(m.prefix+"!T", term.Int)
	}
	m.ctx = &buffer.Ctx{
		B:      b,
		Assume: func(t *term.Term) { m.assumes = append(m.assumes, t) },
		Prefix: m.prefix,
	}

	cfg := buffer.Config{
		Cap:        m.opts.BufferCap,
		NumFields:  len(info.Prog.Fields),
		NumClasses: m.opts.NumClasses,
		MaxBytes:   m.opts.MaxBytes,
	}
	outCfg := cfg
	outCfg.Cap = m.opts.OutBufferCap
	for _, bp := range info.Prog.Params {
		n := int64(1)
		if bp.Size != nil {
			n, _ = m.constEvalEarly(bp.Size, m.opts.Params)
		}
		c := cfg
		if bp.Dir == ast.DirOut {
			c = outCfg
		}
		var instances []string
		for i := int64(0); i < n; i++ {
			name := bp.Name
			if bp.Size != nil {
				name = fmt.Sprintf("%s[%d]", bp.Name, i)
			}
			instances = append(instances, name)
			m.bufNames = append(m.bufNames, name)
			m.bufs[name] = m.opts.Model.Empty(m.ctx, c)
			if bp.Dir == ast.DirIn {
				m.inputNames = append(m.inputNames, name)
			} else {
				m.outputNames = append(m.outputNames, name)
			}
		}
		m.bufInstances[bp.Name] = instances
	}

	// Initialize variables.
	for _, d := range info.Prog.Decls {
		if err := m.initVar(d); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Machine) initVar(d *ast.VarDecl) error {
	switch d.Type.Kind {
	case ast.TList:
		l := &listVal{size: m.b.IntConst(0)}
		for i := 0; i < m.opts.ListCap; i++ {
			l.elems = append(l.elems, m.b.IntConst(0))
		}
		m.lists[d.Name] = l
		return nil
	case ast.TInt, ast.TBool:
		var init *term.Term
		if d.Type.Kind == ast.TBool {
			init = m.b.False()
		} else {
			init = m.b.IntConst(0)
		}
		if d.Init != nil {
			// Globals' initializers are evaluated once, before step 0, over
			// constants only.
			v, err := m.constEval(d.Init)
			if err != nil {
				return &Error{pos(d.Init.Pos()), "initializers must be compile-time constants: " + err.Error()}
			}
			if d.Type.Kind == ast.TBool {
				init = m.b.BoolConst(v != 0)
			} else {
				init = m.b.IntConst(v)
			}
		}
		if d.Type.IsArray() {
			n, err := m.constEval(d.Type.Size)
			if err != nil {
				return err
			}
			if n <= 0 || n > 256 {
				return &Error{pos(d.NamePos), fmt.Sprintf("array %s size %d out of range (1..256)", d.Name, n)}
			}
			m.arraySize[d.Name] = n
			for i := int64(0); i < n; i++ {
				m.vars[fmt.Sprintf("%s[%d]", d.Name, i)] = init
			}
			return nil
		}
		m.vars[d.Name] = init
		return nil
	}
	return &Error{pos(d.NamePos), "unsupported declaration type"}
}

// Buffers returns the machine's buffer states (live references).
func (m *Machine) Buffers() map[string]buffer.State { return m.bufs }

// BufferNames returns instance names in declaration order.
func (m *Machine) BufferNames() []string { return m.bufNames }

// InputNames returns input buffer instance names.
func (m *Machine) InputNames() []string { return m.inputNames }

// OutputNames returns output buffer instance names.
func (m *Machine) OutputNames() []string { return m.outputNames }

// Ctx exposes the buffer context (for composition drivers).
func (m *Machine) Ctx() *buffer.Ctx { return m.ctx }

// TVar returns the symbolic horizon variable when the machine was built
// with Options.SymbolicT, nil otherwise. Callers constrain it per query
// (e.g. CheckAssuming TVar == k) rather than asserting it permanently, so
// one encoding answers every horizon.
func (m *Machine) TVar() *term.Term { return m.tvar }

// SetBuffer replaces a buffer instance's state (transition-system use).
func (m *Machine) SetBuffer(name string, st buffer.State) { m.bufs[name] = st }

// SetVar replaces a scalar variable's value (transition-system use).
func (m *Machine) SetVar(name string, v *term.Term) { m.vars[name] = v }

// Var reads a scalar variable.
func (m *Machine) Var(name string) *term.Term { return m.vars[name] }

// VarNames returns all scalar state names, sorted.
func (m *Machine) VarNames() []string { return sortedNames(m.vars) }

// List returns a list's slots and size (transition-system use).
func (m *Machine) List(name string) ([]*term.Term, *term.Term) {
	l := m.lists[name]
	return l.elems, l.size
}

// SetList replaces a list's contents.
func (m *Machine) SetList(name string, elems []*term.Term, size *term.Term) {
	m.lists[name] = &listVal{elems: elems, size: size}
}

// ListNames returns declared list names, sorted.
func (m *Machine) ListNames() []string { return sortedNames(m.lists) }

// RunStep executes one time step: symbolic arrivals flush into the input
// buffers, then the program body runs once.
func (m *Machine) RunStep(t int) error {
	m.step = t
	m.curT = m.b.IntConst(int64(t))
	m.guard = m.b.True()
	if !m.opts.NoArrivals {
		m.injectArrivals(t)
	}
	// Reset locals to their zero values at the start of every step (§3:
	// local scope is a single time step).
	for _, d := range m.info.Locals {
		zero := m.b.IntConst(0)
		if d.Type.Kind == ast.TBool {
			var zb *term.Term = m.b.False()
			if d.Type.IsArray() {
				for i := int64(0); i < m.arraySize[d.Name]; i++ {
					m.vars[fmt.Sprintf("%s[%d]", d.Name, i)] = zb
				}
			} else {
				m.vars[d.Name] = zb
			}
			continue
		}
		if d.Type.IsArray() {
			for i := int64(0); i < m.arraySize[d.Name]; i++ {
				m.vars[fmt.Sprintf("%s[%d]", d.Name, i)] = zero
			}
		} else {
			m.vars[d.Name] = zero
		}
	}
	if err := m.execStmts(m.info.Prog.Body, nil); err != nil {
		return err
	}
	m.snapshot()
	return nil
}

// RunStepWith executes one step with arrivals injected by the caller before
// the call (composition runtime).
func (m *Machine) RunStepWith(t int) error {
	save := m.opts.NoArrivals
	m.opts.NoArrivals = true
	err := m.RunStep(t)
	m.opts.NoArrivals = save
	return err
}

// injectArrivals creates the symbolic input packets for step t.
func (m *Machine) injectArrivals(t int) {
	m.InjectArrivalsInto(t, m.inputNames)
}

// InjectArrivalsInto creates symbolic input packets for step t on the given
// input buffer instances only. The composition runtime uses it to give
// externally-facing inputs symbolic traffic while connected inputs receive
// only flushed packets.
func (m *Machine) InjectArrivalsInto(t int, names []string) {
	b := m.b
	for _, name := range names {
		var prevValid *term.Term
		for k := 0; k < m.opts.ArrivalsPerStep; k++ {
			base := fmt.Sprintf("%s!in!%s!t%d!k%d", m.prefix, name, t, k)
			valid := b.Var(base+".valid", term.Bool)
			fields := make([]*term.Term, len(m.info.Prog.Fields))
			for f := range fields {
				fv := b.Var(fmt.Sprintf("%s.f%d", base, f), term.Int)
				m.assumes = append(m.assumes,
					b.Le(b.IntConst(0), fv),
					b.Lt(fv, b.IntConst(int64(m.opts.NumClasses))))
				fields[f] = fv
			}
			var bytes *term.Term
			if m.opts.MaxBytes > 1 {
				bytes = b.Var(base+".bytes", term.Int)
				m.assumes = append(m.assumes,
					b.Le(b.IntConst(1), bytes),
					b.Le(bytes, b.IntConst(int64(m.opts.MaxBytes))))
			} else {
				bytes = b.IntConst(1)
			}
			if prevValid != nil {
				// Arrival slots fill front-to-back (symmetry breaking).
				m.assumes = append(m.assumes, b.Implies(valid, prevValid))
			}
			prevValid = valid
			m.bufs[name].Arrive(m.ctx, buffer.Packet{Fields: fields, Bytes: bytes}, valid)
			m.arrivals = append(m.arrivals, Arrival{
				Step: t, Buffer: name, Slot: k,
				Valid: valid, Fields: fields, Bytes: bytes,
			})
		}
	}
}

func (m *Machine) snapshot() {
	snap := StepSnapshot{
		Vars:    make(map[string]*term.Term, len(m.vars)),
		Buffers: make(map[string]buffer.State, len(m.bufs)),
	}
	for k, v := range m.vars {
		snap.Vars[k] = v
	}
	for k, v := range m.bufs {
		snap.Buffers[k] = v.Clone()
	}
	m.steps = append(m.steps, snap)
}

// Result packages the accumulated encoding.
func (m *Machine) Result() *Compiled {
	return &Compiled{
		Info:        m.info,
		Opts:        m.opts,
		B:           m.b,
		Assumes:     m.assumes,
		Asserts:     m.asserts,
		Arrivals:    m.arrivals,
		Havocs:      m.havocs,
		Steps:       m.steps,
		InputNames:  m.inputNames,
		OutputNames: m.outputNames,
	}
}

// Assumes returns the semantic assumptions collected so far.
func (m *Machine) Assumes() []*term.Term { return m.assumes }

// Asserts returns the assert instances collected so far.
func (m *Machine) Asserts() []AssertInst { return m.asserts }

// ----- statement execution (guard-threaded symbolic execution) -----

// loopEnv binds unrolled loop variables to concrete values.
type loopEnv map[string]int64

func (m *Machine) execStmts(stmts []ast.Stmt, le loopEnv) error {
	for _, s := range stmts {
		if err := m.execStmt(s, le); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) execStmt(s ast.Stmt, le loopEnv) error {
	switch n := s.(type) {
	case *ast.Assign:
		return m.execAssign(n, le)
	case *ast.PushBack:
		return m.execPushBack(n, le)
	case *ast.Move:
		return m.execMove(n, le)
	case *ast.If:
		cond, err := m.evalBool(n.Cond, le)
		if err != nil {
			return err
		}
		saved := m.guard
		m.guard = m.b.And(saved, cond)
		if err := m.execStmts(n.Then, le); err != nil {
			return err
		}
		m.guard = m.b.And(saved, m.b.Not(cond))
		if err := m.execStmts(n.Else, le); err != nil {
			return err
		}
		m.guard = saved
		return nil
	case *ast.For:
		lo, err := m.constEvalLoop(n.Lo, le)
		if err != nil {
			return err
		}
		hi, err := m.constEvalLoop(n.Hi, le)
		if err != nil {
			return err
		}
		if hi-lo > 1024 {
			return &Error{pos(n.KwPos), fmt.Sprintf("loop unrolls %d times (max 1024)", hi-lo)}
		}
		for i := lo; i < hi; i++ {
			inner := loopEnv{}
			for k, v := range le {
				inner[k] = v
			}
			inner[n.Var] = i
			if err := m.execStmts(n.Body, inner); err != nil {
				return err
			}
		}
		return nil
	case *ast.Assert:
		cond, err := m.evalBool(n.Cond, le)
		if err != nil {
			return err
		}
		m.asserts = append(m.asserts, AssertInst{
			Step: m.step, Guard: m.guard, Cond: cond, Pos: pos(n.KwPos),
		})
		return nil
	case *ast.Assume:
		cond, err := m.evalBool(n.Cond, le)
		if err != nil {
			return err
		}
		m.assumes = append(m.assumes, m.b.Implies(m.guard, cond))
		return nil
	case *ast.Havoc:
		old, ok := m.vars[n.Target.Name]
		if !ok {
			return &Error{pos(n.KwPos), fmt.Sprintf("unknown variable %q", n.Target.Name)}
		}
		m.havocSeq++
		var fresh *term.Term
		if old.Sort() == term.Bool {
			fresh = m.b.Var(fmt.Sprintf("%s!havoc!%s!t%d#%d", m.prefix, n.Target.Name, m.step, m.havocSeq), term.Bool)
		} else {
			fresh = m.b.Var(fmt.Sprintf("%s!havoc!%s!t%d#%d", m.prefix, n.Target.Name, m.step, m.havocSeq), term.Int)
		}
		m.havocs = append(m.havocs, HavocVar{Step: m.step, Name: n.Target.Name, Var: fresh})
		m.vars[n.Target.Name] = m.b.Ite(m.guard, fresh, old)
		return nil
	case *ast.VarDecl:
		return &Error{pos(n.NamePos), "nested declarations are not supported"}
	}
	return &Error{Pos{}, fmt.Sprintf("unhandled statement %T", s)}
}

func (m *Machine) execAssign(n *ast.Assign, le loopEnv) error {
	// pop_front RHS mutates the list as a side effect.
	if pf, ok := n.RHS.(*ast.PopFront); ok {
		lname, err := m.listName(pf.List)
		if err != nil {
			return err
		}
		head, err := m.popFront(lname)
		if err != nil {
			return err
		}
		return m.assignTo(n.LHS, head, le)
	}
	rhs, err := m.eval(n.RHS, le)
	if err != nil {
		return err
	}
	return m.assignTo(n.LHS, rhs, le)
}

// assignTo performs a guarded assignment to an ident or array element.
func (m *Machine) assignTo(lhs ast.Expr, val *term.Term, le loopEnv) error {
	switch tgt := lhs.(type) {
	case *ast.Ident:
		old, ok := m.vars[tgt.Name]
		if !ok {
			return &Error{pos(tgt.IdPos), fmt.Sprintf("unknown variable %q", tgt.Name)}
		}
		m.vars[tgt.Name] = m.b.Ite(m.guard, val, old)
		return nil
	case *ast.Index:
		base := tgt.X.(*ast.Ident)
		size, ok := m.arraySize[base.Name]
		if !ok {
			return &Error{pos(base.IdPos), fmt.Sprintf("%q is not an array", base.Name)}
		}
		idx, err := m.eval(tgt.Idx, le)
		if err != nil {
			return err
		}
		// Flattened array write: guarded update of every candidate slot
		// (out-of-range indices write nowhere).
		for i := int64(0); i < size; i++ {
			slot := fmt.Sprintf("%s[%d]", base.Name, i)
			hit := m.b.And(m.guard, m.b.Eq(idx, m.b.IntConst(i)))
			m.vars[slot] = m.b.Ite(hit, val, m.vars[slot])
		}
		return nil
	}
	return &Error{pos(lhs.Pos()), "invalid assignment target"}
}

func (m *Machine) execPushBack(n *ast.PushBack, le loopEnv) error {
	lname, err := m.listName(n.List)
	if err != nil {
		return err
	}
	arg, err := m.eval(n.Arg, le)
	if err != nil {
		return err
	}
	l := m.lists[lname]
	b := m.b
	cap := int64(len(l.elems))
	fits := b.Lt(l.size, b.IntConst(cap))
	place := b.And(m.guard, fits)
	for j := int64(0); j < cap; j++ {
		here := b.And(place, b.Eq(l.size, b.IntConst(j)))
		l.elems[j] = b.Ite(here, arg, l.elems[j])
	}
	l.size = b.Add(l.size, b.Ite(place, b.IntConst(1), b.IntConst(0)))
	return nil
}

// popFront removes and returns the head under the current guard. Popping an
// empty list yields 0 and leaves the list empty (programs are expected to
// check empty() first, as Figure 4 does).
func (m *Machine) popFront(lname string) (*term.Term, error) {
	l := m.lists[lname]
	b := m.b
	nonEmpty := b.Lt(b.IntConst(0), l.size)
	do := b.And(m.guard, nonEmpty)
	head := b.Ite(nonEmpty, l.elems[0], b.IntConst(0))
	for j := 0; j < len(l.elems)-1; j++ {
		l.elems[j] = b.Ite(do, l.elems[j+1], l.elems[j])
	}
	l.size = b.Sub(l.size, b.Ite(do, b.IntConst(1), b.IntConst(0)))
	return head, nil
}

func (m *Machine) listName(e ast.Expr) (string, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", &Error{pos(e.Pos()), "expected a list variable"}
	}
	if _, ok := m.lists[id.Name]; !ok {
		return "", &Error{pos(id.IdPos), fmt.Sprintf("unknown list %q", id.Name)}
	}
	return id.Name, nil
}

func (m *Machine) execMove(n *ast.Move, le loopEnv) error {
	src, err := m.evalBufRef(n.Src, le)
	if err != nil {
		return err
	}
	dst, err := m.evalBufRef(n.Dst, le)
	if err != nil {
		return err
	}
	if len(dst.filters) > 0 {
		return &Error{pos(n.Dst.Pos()), "move destination cannot be filtered"}
	}
	count, err := m.eval(n.Count, le)
	if err != nil {
		return err
	}
	var filt *buffer.Filter
	if len(src.filters) == 1 {
		filt = &src.filters[0]
	} else if len(src.filters) > 1 {
		return &Error{pos(n.Src.Pos()), "chained filters on move sources are not supported (compose into one)"}
	}
	for _, sa := range src.arms {
		for _, da := range dst.arms {
			g := m.b.And(m.guard, sa.cond, da.cond)
			if g == m.b.False() {
				continue
			}
			if sa.name == da.name {
				// A buffer moved onto itself is a no-op (can only occur
				// through symbolic indices selecting the same instance).
				continue
			}
			var err error
			if n.Bytes {
				err = m.bufs[sa.name].MoveB(m.ctx, m.bufs[da.name], count, filt, g)
			} else {
				err = m.bufs[sa.name].MoveP(m.ctx, m.bufs[da.name], count, filt, g)
			}
			if err != nil {
				return &Error{pos(n.KwPos), err.Error()}
			}
		}
	}
	return nil
}
