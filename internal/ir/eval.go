package ir

import (
	"fmt"

	"buffy/internal/buffer"
	"buffy/internal/lang/ast"
	"buffy/internal/smt/term"
)

// bufArm is one candidate buffer instance of a (possibly symbolically
// indexed) buffer expression, guarded by cond.
type bufArm struct {
	cond *term.Term
	name string
}

// bufRef is the evaluated form of a buffer expression: a guarded set of
// instances (the case split FPerf writes by hand) plus accumulated filters.
type bufRef struct {
	arms    []bufArm
	filters []buffer.Filter
}

// eval evaluates an int- or bool-typed expression to a term.
func (m *Machine) eval(e ast.Expr, le loopEnv) (*term.Term, error) {
	b := m.b
	switch n := e.(type) {
	case *ast.IntLit:
		return b.IntConst(n.Value), nil
	case *ast.BoolLit:
		return b.BoolConst(n.Value), nil
	case *ast.Ident:
		return m.evalIdent(n, le)
	case *ast.Unary:
		x, err := m.eval(n.X, le)
		if err != nil {
			return nil, err
		}
		if n.Op == ast.OpNot {
			return b.Not(x), nil
		}
		return b.Neg(x), nil
	case *ast.Binary:
		return m.evalBinary(n, le)
	case *ast.Index:
		return m.evalIndex(n, le)
	case *ast.Backlog:
		ref, err := m.evalBufRef(n.Buf, le)
		if err != nil {
			return nil, err
		}
		return m.backlogOf(ref, n.Bytes, pos(n.KwPos))
	case *ast.ListQuery:
		return m.evalListQuery(n, le)
	case *ast.PopFront:
		return nil, &Error{pos(n.Pos()), "pop_front outside assignment"}
	case *ast.Filter:
		return nil, &Error{pos(n.Pos()), "a filtered buffer is not a value; apply backlog-p/backlog-b or move it"}
	}
	return nil, &Error{pos(e.Pos()), fmt.Sprintf("unhandled expression %T", e)}
}

func (m *Machine) evalBool(e ast.Expr, le loopEnv) (*term.Term, error) {
	t, err := m.eval(e, le)
	if err != nil {
		return nil, err
	}
	if t.Sort() != term.Bool {
		return nil, &Error{pos(e.Pos()), "expected a boolean expression"}
	}
	return t, nil
}

func (m *Machine) evalIdent(n *ast.Ident, le loopEnv) (*term.Term, error) {
	if v, ok := le[n.Name]; ok {
		return m.b.IntConst(v), nil
	}
	if v, ok := m.vars[n.Name]; ok {
		return v, nil
	}
	if n.Name == "t" {
		return m.curT, nil
	}
	if v, ok := m.opts.Params[n.Name]; ok {
		return m.b.IntConst(v), nil
	}
	if n.Name == "T" {
		if m.opts.SymbolicT {
			return m.tvar, nil
		}
		return m.b.IntConst(int64(m.opts.T)), nil
	}
	if _, isArr := m.arraySize[n.Name]; isArr {
		return nil, &Error{pos(n.IdPos), fmt.Sprintf("array %q used without an index", n.Name)}
	}
	if _, isList := m.lists[n.Name]; isList {
		return nil, &Error{pos(n.IdPos), fmt.Sprintf("list %q used as a value", n.Name)}
	}
	return nil, &Error{pos(n.IdPos), fmt.Sprintf("unbound identifier %q (missing compile-time parameter?)", n.Name)}
}

func (m *Machine) evalBinary(n *ast.Binary, le loopEnv) (*term.Term, error) {
	b := m.b
	// Division and modulo are compile-time only (§7 keeps the encodings in
	// cheap theories): both operands must constant-fold.
	if n.Op == ast.OpDiv || n.Op == ast.OpMod {
		v, err := m.constEvalLoop(n, le)
		if err != nil {
			return nil, &Error{pos(n.Pos()), "/ and % require compile-time constant operands: " + err.Error()}
		}
		return b.IntConst(v), nil
	}
	x, err := m.eval(n.X, le)
	if err != nil {
		return nil, err
	}
	y, err := m.eval(n.Y, le)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case ast.OpAdd:
		return b.Add(x, y), nil
	case ast.OpSub:
		return b.Sub(x, y), nil
	case ast.OpMul:
		return b.Mul(x, y), nil
	case ast.OpEq:
		return b.Eq(x, y), nil
	case ast.OpNeq:
		return b.Neq(x, y), nil
	case ast.OpLt:
		return b.Lt(x, y), nil
	case ast.OpLe:
		return b.Le(x, y), nil
	case ast.OpGt:
		return b.Gt(x, y), nil
	case ast.OpGe:
		return b.Ge(x, y), nil
	case ast.OpAnd:
		return b.And(x, y), nil
	case ast.OpOr:
		return b.Or(x, y), nil
	}
	return nil, &Error{pos(n.Pos()), fmt.Sprintf("unhandled operator %v", n.Op)}
}

// evalIndex evaluates arr[i] for scalar arrays (buffer arrays are handled
// by evalBufRef).
func (m *Machine) evalIndex(n *ast.Index, le loopEnv) (*term.Term, error) {
	base, ok := n.X.(*ast.Ident)
	if !ok {
		return nil, &Error{pos(n.Pos()), "only variables can be indexed"}
	}
	size, isArr := m.arraySize[base.Name]
	if !isArr {
		return nil, &Error{pos(base.IdPos), fmt.Sprintf("%q is not an array", base.Name)}
	}
	idx, err := m.eval(n.Idx, le)
	if err != nil {
		return nil, err
	}
	// Flattened read: ite chain over slots; out-of-range reads yield the
	// element type's zero value.
	first := m.vars[fmt.Sprintf("%s[0]", base.Name)]
	var out *term.Term
	if first.Sort() == term.Bool {
		out = m.b.False()
	} else {
		out = m.b.IntConst(0)
	}
	for i := size - 1; i >= 0; i-- {
		slot := m.vars[fmt.Sprintf("%s[%d]", base.Name, i)]
		out = m.b.Ite(m.b.Eq(idx, m.b.IntConst(i)), slot, out)
	}
	return out, nil
}

func (m *Machine) evalListQuery(n *ast.ListQuery, le loopEnv) (*term.Term, error) {
	lname, err := m.listName(n.List)
	if err != nil {
		return nil, err
	}
	l := m.lists[lname]
	b := m.b
	switch n.Op {
	case ast.ListEmpty:
		return b.Eq(l.size, b.IntConst(0)), nil
	case ast.ListSize:
		return l.size, nil
	case ast.ListHas:
		arg, err := m.eval(n.Arg, le)
		if err != nil {
			return nil, err
		}
		hits := make([]*term.Term, len(l.elems))
		for i := range l.elems {
			inRange := b.Lt(b.IntConst(int64(i)), l.size)
			hits[i] = b.And(inRange, b.Eq(l.elems[i], arg))
		}
		return b.Or(hits...), nil
	}
	return nil, &Error{pos(n.Pos()), "unhandled list query"}
}

// evalBufRef resolves a buffer expression to guarded instances + filters.
func (m *Machine) evalBufRef(e ast.Expr, le loopEnv) (*bufRef, error) {
	switch n := e.(type) {
	case *ast.Ident:
		insts, ok := m.bufInstances[n.Name]
		if !ok {
			return nil, &Error{pos(n.IdPos), fmt.Sprintf("%q is not a buffer", n.Name)}
		}
		if len(insts) != 1 || m.info.Prog.Params[m.paramIndex(n.Name)].Size != nil {
			return nil, &Error{pos(n.IdPos), fmt.Sprintf("buffer array %q used without an index", n.Name)}
		}
		return &bufRef{arms: []bufArm{{cond: m.b.True(), name: insts[0]}}}, nil
	case *ast.Index:
		base, ok := n.X.(*ast.Ident)
		if !ok {
			return nil, &Error{pos(n.Pos()), "invalid buffer expression"}
		}
		insts, isBuf := m.bufInstances[base.Name]
		if !isBuf {
			return nil, &Error{pos(base.IdPos), fmt.Sprintf("%q is not a buffer array", base.Name)}
		}
		idx, err := m.eval(n.Idx, le)
		if err != nil {
			return nil, err
		}
		if idx.Kind() == term.KindIntConst {
			i := idx.IntVal()
			if i >= 0 && i < int64(len(insts)) {
				return &bufRef{arms: []bufArm{{cond: m.b.True(), name: insts[i]}}}, nil
			}
			// A syntactically-literal out-of-range index is a hard error
			// (surely a typo); an out-of-range value that merely folded to
			// a constant gets the run-time "null buffer" semantics the
			// interpreter implements (backlog 0, moves are no-ops).
			if _, lit := n.Idx.(*ast.IntLit); lit {
				return nil, &Error{pos(n.Idx.Pos()), fmt.Sprintf("buffer index %d out of range [0,%d)", i, len(insts))}
			}
			return &bufRef{}, nil
		}
		// Run-time index: case split over all instances (the Figure 1
		// enumeration, generated instead of hand-written).
		ref := &bufRef{}
		for i, name := range insts {
			ref.arms = append(ref.arms, bufArm{
				cond: m.b.Eq(idx, m.b.IntConst(int64(i))),
				name: name,
			})
		}
		return ref, nil
	case *ast.Filter:
		ref, err := m.evalBufRef(n.Buf, le)
		if err != nil {
			return nil, err
		}
		fidx, ok := m.info.FieldIndex[n.Field]
		if !ok {
			return nil, &Error{pos(n.Pos()), fmt.Sprintf("unknown field %q", n.Field)}
		}
		val, err := m.eval(n.Value, le)
		if err != nil {
			return nil, err
		}
		ref.filters = append(ref.filters, buffer.Filter{Field: fidx, Value: val})
		return ref, nil
	}
	return nil, &Error{pos(e.Pos()), "expected a buffer expression"}
}

func (m *Machine) paramIndex(name string) int {
	for i, p := range m.info.Prog.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// backlogOf evaluates backlog over a guarded buffer reference.
func (m *Machine) backlogOf(ref *bufRef, bytes bool, p Pos) (*term.Term, error) {
	out := m.b.IntConst(0)
	for i := len(ref.arms) - 1; i >= 0; i-- {
		arm := ref.arms[i]
		st := m.bufs[arm.name]
		var v *term.Term
		var err error
		switch {
		case len(ref.filters) == 0 && !bytes:
			v = st.BacklogP(m.ctx)
		case len(ref.filters) == 0 && bytes:
			v = st.BacklogB(m.ctx)
		default:
			v, err = m.filteredBacklog(st, ref.filters, bytes)
			if err != nil {
				return nil, &Error{p, err.Error()}
			}
		}
		out = m.b.Ite(arm.cond, v, out)
	}
	return out, nil
}

// filteredBacklog applies one or more filters. A single filter maps to the
// model's primitive; chains are only exact on the list model, where they
// are computed by intersecting masks via repeated single-filter calls is
// not possible — instead we require single filters for non-list models and
// compute chains on the list model by nesting.
func (m *Machine) filteredBacklog(st buffer.State, filters []buffer.Filter, bytes bool) (*term.Term, error) {
	if len(filters) == 1 {
		if bytes {
			return st.FilterBacklogB(m.ctx, filters[0])
		}
		return st.FilterBacklogP(m.ctx, filters[0])
	}
	ls, ok := st.(interface {
		MultiFilterBacklog(c *buffer.Ctx, fs []buffer.Filter, bytes bool) (*term.Term, error)
	})
	if !ok {
		return nil, fmt.Errorf("chained filters need the list buffer model")
	}
	return ls.MultiFilterBacklog(m.ctx, filters, bytes)
}

// ----- compile-time constant evaluation -----

// constEvalEarly evaluates size expressions before the machine's options
// are finalized (buffer array sizes).
func (m *Machine) constEvalEarly(e ast.Expr, params map[string]int64) (int64, error) {
	save := m.opts.Params
	m.opts.Params = params
	defer func() { m.opts.Params = save }()
	return m.constEval(e)
}

// constEval evaluates a compile-time constant expression (params, T and
// literals only).
func (m *Machine) constEval(e ast.Expr) (int64, error) {
	return m.constEvalLoop(e, nil)
}

// constEvalLoop additionally resolves unrolled loop variables.
func (m *Machine) constEvalLoop(e ast.Expr, le loopEnv) (int64, error) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Value, nil
	case *ast.Ident:
		if le != nil {
			if v, ok := le[n.Name]; ok {
				return v, nil
			}
		}
		if v, ok := m.opts.Params[n.Name]; ok {
			return v, nil
		}
		if n.Name == "T" {
			if m.opts.SymbolicT {
				// Constant positions (loop bounds, array sizes, / and %)
				// shape the encoding itself and cannot wait for the solver.
				return 0, fmt.Errorf("T is symbolic in this compilation and cannot appear in a constant position")
			}
			return int64(m.opts.T), nil
		}
		if n.Name == "t" {
			return int64(m.step), nil
		}
		return 0, fmt.Errorf("%q is not a compile-time constant", n.Name)
	case *ast.Unary:
		if n.Op != ast.OpNegate {
			return 0, fmt.Errorf("operator %v not constant", n.Op)
		}
		v, err := m.constEvalLoop(n.X, le)
		return -v, err
	case *ast.Binary:
		x, err := m.constEvalLoop(n.X, le)
		if err != nil {
			return 0, err
		}
		y, err := m.constEvalLoop(n.Y, le)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case ast.OpAdd:
			return x + y, nil
		case ast.OpSub:
			return x - y, nil
		case ast.OpMul:
			return x * y, nil
		case ast.OpDiv:
			if y == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return x / y, nil
		case ast.OpMod:
			if y == 0 {
				return 0, fmt.Errorf("modulo by zero in constant expression")
			}
			return x % y, nil
		}
		return 0, fmt.Errorf("operator %v not constant", n.Op)
	}
	return 0, fmt.Errorf("expression is not a compile-time constant")
}
