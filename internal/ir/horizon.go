package ir

import (
	"buffy/internal/lang/ast"
	"buffy/internal/lang/typecheck"
)

// HorizonUse classifies how a program references the builtin horizon T.
// The classification decides whether one symbolic-T compilation
// (Options.SymbolicT) can serve every horizon, or whether each horizon
// needs its own unrolling.
type HorizonUse int

const (
	// HorizonNone: the program never reads T. Any single unrolling to
	// maxT answers every horizon k <= maxT (per-step asserts only).
	HorizonNone HorizonUse = iota
	// HorizonTerm: T appears only in ordinary expression positions
	// (guards like t == T - 1, arithmetic, assert conditions). A
	// symbolic-T compilation answers every horizon exactly.
	HorizonTerm
	// HorizonConst: T appears in at least one compile-time constant
	// position (loop bound, array or buffer-array size, division or
	// modulo operand). The encoding's shape depends on T, so every
	// horizon needs its own compilation — symbolic T is not available.
	HorizonConst
)

func (u HorizonUse) String() string {
	switch u {
	case HorizonTerm:
		return "term"
	case HorizonConst:
		return "const"
	}
	return "none"
}

// horizonScan walks the checked AST accumulating the strongest use. It
// resolves idents through typecheck.Info.Symbols, so a user variable or
// loop variable that shadows the builtin name does not count as a use.
type horizonScan struct {
	info *typecheck.Info
	use  HorizonUse
}

// ScanHorizon reports how prog uses the builtin T. It drives the routing
// decision between the warm symbolic-T session path (HorizonNone,
// HorizonTerm) and cold per-horizon compilation (HorizonConst).
func ScanHorizon(info *typecheck.Info) HorizonUse {
	sc := &horizonScan{info: info}
	for _, bp := range info.Prog.Params {
		if bp.Size != nil {
			sc.constExpr(bp.Size)
		}
	}
	for _, d := range info.Prog.Decls {
		sc.varDecl(d)
	}
	sc.stmts(info.Prog.Body)
	return sc.use
}

func (sc *horizonScan) record(u HorizonUse) {
	if u > sc.use {
		sc.use = u
	}
}

// isHorizonIdent reports whether e is the builtin T (not a shadowing
// variable, parameter or loop variable).
func (sc *horizonScan) isHorizonIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != "T" {
		return false
	}
	if sym, ok := sc.info.Symbols[id]; ok {
		return sym.Kind == typecheck.SymBuiltin
	}
	// Unresolved T (no symbol recorded) — treat as the builtin; the
	// conservative answer only ever forces a colder path.
	return true
}

// constExpr scans an expression in a compile-time constant position.
func (sc *horizonScan) constExpr(e ast.Expr) {
	if e == nil {
		return
	}
	if sc.isHorizonIdent(e) {
		sc.record(HorizonConst)
		return
	}
	switch n := e.(type) {
	case *ast.Unary:
		sc.constExpr(n.X)
	case *ast.Binary:
		sc.constExpr(n.X)
		sc.constExpr(n.Y)
	}
}

// expr scans an ordinary (term-position) expression.
func (sc *horizonScan) expr(e ast.Expr) {
	if e == nil {
		return
	}
	if sc.isHorizonIdent(e) {
		sc.record(HorizonTerm)
		return
	}
	switch n := e.(type) {
	case *ast.Unary:
		sc.expr(n.X)
	case *ast.Binary:
		if n.Op == ast.OpDiv || n.Op == ast.OpMod {
			// Division and modulo constant-fold their operands at
			// compile time (§7), so T inside them shapes the encoding.
			sc.constExpr(n.X)
			sc.constExpr(n.Y)
			return
		}
		sc.expr(n.X)
		sc.expr(n.Y)
	case *ast.Index:
		sc.expr(n.X)
		sc.expr(n.Idx)
	case *ast.Backlog:
		sc.expr(n.Buf)
	case *ast.Filter:
		sc.expr(n.Buf)
		sc.expr(n.Value)
	case *ast.ListQuery:
		sc.expr(n.List)
		sc.expr(n.Arg)
	case *ast.PopFront:
		sc.expr(n.List)
	}
}

func (sc *horizonScan) varDecl(d *ast.VarDecl) {
	sc.constExpr(d.Type.Size)
	// Initializers are evaluated once before step 0 over constants only.
	sc.constExpr(d.Init)
}

func (sc *horizonScan) stmts(list []ast.Stmt) {
	for _, s := range list {
		sc.stmt(s)
	}
}

func (sc *horizonScan) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Assign:
		sc.expr(n.LHS)
		sc.expr(n.RHS)
	case *ast.PushBack:
		sc.expr(n.List)
		sc.expr(n.Arg)
	case *ast.Move:
		sc.expr(n.Src)
		sc.expr(n.Dst)
		sc.expr(n.Count)
	case *ast.If:
		sc.expr(n.Cond)
		sc.stmts(n.Then)
		sc.stmts(n.Else)
	case *ast.For:
		sc.constExpr(n.Lo)
		sc.constExpr(n.Hi)
		sc.stmts(n.Body)
	case *ast.Assert:
		sc.expr(n.Cond)
	case *ast.Assume:
		sc.expr(n.Cond)
	case *ast.VarDecl:
		sc.varDecl(n)
	}
}
