// Package ir lowers checked Buffy programs into solver-ready term DAGs.
// The lowering applies exactly the transformations §4 of the paper names:
// bounded loops are fully unrolled, control flow is converted to guarded
// (single-assignment) updates — the SSA step —, arrays are flattened to
// scalar slots to avoid array theories (§7), buffer operations are expanded
// through the selected buffer model, and run-time buffer indices (ibs[head])
// are case-split over all candidate buffers, just like FPerf's hand-written
// per-queue enumeration in Figure 1.
//
// Two entry points cover the back-ends' needs:
//
//   - Compile unrolls a program over a bounded horizon T starting from the
//     empty initial state, producing assumption and assertion terms over
//     symbolic input traffic — the bounded-model-checking encoding.
//   - NewMachine exposes single-step execution over caller-controlled
//     state, which the composition runtime chains across programs and the
//     transition-system back-end uses to build a step relation.
package ir

import (
	"context"
	"fmt"
	"sort"

	"buffy/internal/buffer"
	"buffy/internal/lang/typecheck"
	"buffy/internal/smt/term"
	"buffy/internal/telemetry"
)

// Options configures compilation.
type Options struct {
	// Model is the buffer model; nil means the list model.
	Model buffer.Model
	// T is the time horizon (number of steps) for Compile.
	T int
	// Params binds the program's compile-time parameters.
	Params map[string]int64
	// BufferCap is each buffer's capacity (0: default 8).
	BufferCap int
	// OutBufferCap overrides capacity for output buffers (0: T*ArrivalsPerStep
	// heuristic, so accumulated output is never dropped by default).
	OutBufferCap int
	// ArrivalsPerStep bounds symbolic arrivals per input buffer per step
	// (0: default 1).
	ArrivalsPerStep int
	// NumClasses bounds packet field values (0: default = number of input
	// buffers, min 2).
	NumClasses int
	// MaxBytes bounds a packet's byte size (0: default 1 — unit packets).
	MaxBytes int
	// ListCap bounds the capacity of Buffy list variables (0: default =
	// number of input buffer instances, min 4).
	ListCap int
	// NoArrivals disables symbolic input traffic (used by the composition
	// runtime for internally-connected buffers and by custom drivers).
	NoArrivals bool
	// NamePrefix overrides the variable-name namespace (default: the
	// program name). Required when instantiating the same program more
	// than once in a composition, so the instances' symbolic variables
	// stay distinct.
	NamePrefix string
	// SymbolicT makes the builtin T evaluate to a fresh integer variable
	// (Machine.TVar) instead of the constant opts.T. One compiled
	// unrolling then serves every horizon k <= opts.T: solve under the
	// assumption TVar == k and the T-referencing guards (t == T - 1 and
	// friends) select the right step by themselves. T stays a
	// compile-time constant in constant positions (loop bounds, array
	// sizes) — those force the shapes of the encoding and cannot be
	// deferred to the solver — so programs that use T there are rejected;
	// ScanHorizon classifies programs up front.
	SymbolicT bool
}

func (o Options) withDefaults(numInputs int) Options {
	if o.Model == nil {
		o.Model = buffer.ListModel{}
	}
	if o.T <= 0 {
		o.T = 1
	}
	if o.BufferCap <= 0 {
		o.BufferCap = 8
	}
	if o.ArrivalsPerStep <= 0 {
		o.ArrivalsPerStep = 1
	}
	if o.NumClasses <= 0 {
		o.NumClasses = numInputs
		if o.NumClasses < 2 {
			o.NumClasses = 2
		}
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1
	}
	if o.ListCap <= 0 {
		o.ListCap = numInputs
		if o.ListCap < 4 {
			o.ListCap = 4
		}
	}
	if o.OutBufferCap <= 0 {
		o.OutBufferCap = o.T*o.ArrivalsPerStep*numInputs + o.BufferCap
		if o.OutBufferCap < o.BufferCap {
			o.OutBufferCap = o.BufferCap
		}
	}
	return o
}

// Error is a compile-time lowering error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// AssertInst is one assert(E) instance reached during unrolling.
type AssertInst struct {
	Step  int
	Guard *term.Term // path condition under which the assert executes
	Cond  *term.Term // the asserted condition
	Pos   Pos
}

// Pos mirrors token.Pos without re-exporting the token package.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Arrival describes one symbolic arrival slot (a potential input packet).
type Arrival struct {
	Step   int
	Buffer string // instance name, e.g. "ibs[0]"
	Slot   int
	Valid  *term.Term
	Fields []*term.Term
	Bytes  *term.Term
}

// HavocVar records one nondeterministic value introduced by a havoc
// statement; its value in a model is part of the execution trace.
type HavocVar struct {
	Step int
	Name string
	Var  *term.Term
}

// StepSnapshot captures program state at the end of a step.
type StepSnapshot struct {
	// Vars holds globals and monitors (scalars) by name; array elements
	// appear as name[i].
	Vars map[string]*term.Term
	// Buffers maps buffer instance names to their states.
	Buffers map[string]buffer.State
}

// Compiled is the result of unrolling a program over T steps.
type Compiled struct {
	Info *typecheck.Info
	Opts Options
	B    *term.Builder

	// Assumes conjoins buffer-model side constraints, arrival
	// well-formedness and program assume() statements.
	Assumes []*term.Term
	// Asserts lists every assert instance reached during unrolling.
	Asserts []AssertInst
	// Arrivals lists all symbolic input slots, in (step, buffer, slot) order.
	Arrivals []Arrival
	// Havocs lists the nondeterministic havoc variables in creation order.
	Havocs []HavocVar
	// Steps holds end-of-step snapshots, Steps[t] for step t.
	Steps []StepSnapshot
	// InputNames and OutputNames list buffer instance names by direction.
	InputNames  []string
	OutputNames []string
}

// AssumeAll returns the conjunction of all assumptions.
func (c *Compiled) AssumeAll() *term.Term { return c.B.And(c.Assumes...) }

// AssertHolds returns the term "every reached assert instance holds".
func (c *Compiled) AssertHolds() *term.Term {
	parts := make([]*term.Term, len(c.Asserts))
	for i, a := range c.Asserts {
		parts[i] = c.B.Implies(a.Guard, a.Cond)
	}
	return c.B.And(parts...)
}

// AssertReached returns the term "at least one assert instance is reached".
func (c *Compiled) AssertReached() *term.Term {
	parts := make([]*term.Term, len(c.Asserts))
	for i, a := range c.Asserts {
		parts[i] = a.Guard
	}
	return c.B.Or(parts...)
}

// Violation returns the term "some reached assert instance fails".
func (c *Compiled) Violation() *term.Term {
	parts := make([]*term.Term, len(c.Asserts))
	for i, a := range c.Asserts {
		parts[i] = c.B.And(a.Guard, c.B.Not(a.Cond))
	}
	return c.B.Or(parts...)
}

// AssertHoldsUpTo is AssertHolds restricted to assert instances from
// steps 0..k-1. A symbolic-T session unrolled to maxT uses these UpTo
// variants to pose the horizon-k query over the shared encoding.
func (c *Compiled) AssertHoldsUpTo(k int) *term.Term {
	var parts []*term.Term
	for _, a := range c.Asserts {
		if a.Step < k {
			parts = append(parts, c.B.Implies(a.Guard, a.Cond))
		}
	}
	return c.B.And(parts...)
}

// AssertReachedUpTo is AssertReached restricted to steps 0..k-1.
func (c *Compiled) AssertReachedUpTo(k int) *term.Term {
	var parts []*term.Term
	for _, a := range c.Asserts {
		if a.Step < k {
			parts = append(parts, a.Guard)
		}
	}
	return c.B.Or(parts...)
}

// ViolationUpTo is Violation restricted to steps 0..k-1.
func (c *Compiled) ViolationUpTo(k int) *term.Term {
	var parts []*term.Term
	for _, a := range c.Asserts {
		if a.Step < k {
			parts = append(parts, c.B.And(a.Guard, c.B.Not(a.Cond)))
		}
	}
	return c.B.Or(parts...)
}

// TruncatedTo returns a shallow copy of the compilation restricted to the
// first k steps: snapshots, arrivals and havocs from later steps are
// dropped so trace extraction over a horizon-k model never reads the
// unconstrained tail of a deeper unrolling. The term DAG, assumes and
// asserts are shared with the receiver.
func (c *Compiled) TruncatedTo(k int) *Compiled {
	if k >= len(c.Steps) {
		return c
	}
	out := *c
	out.Steps = c.Steps[:k]
	out.Arrivals = nil
	for _, a := range c.Arrivals {
		if a.Step < k {
			out.Arrivals = append(out.Arrivals, a)
		}
	}
	out.Havocs = nil
	for _, h := range c.Havocs {
		if h.Step < k {
			out.Havocs = append(out.Havocs, h)
		}
	}
	return &out
}

// Compile unrolls prog over opts.T steps from the empty initial state with
// symbolic input traffic.
func Compile(info *typecheck.Info, b *term.Builder, opts Options) (*Compiled, error) {
	return CompileContext(context.Background(), info, b, opts)
}

// CompileContext is Compile with cooperative cancellation: the unrolling
// stops between steps once ctx is cancelled, so a long symbolic
// compilation (the dominant cost at large horizons) aborts promptly
// instead of running to completion for an abandoned analysis.
func CompileContext(ctx context.Context, info *typecheck.Info, b *term.Builder, opts Options) (*Compiled, error) {
	_, span := telemetry.StartSpan(ctx, "compile")
	defer span.End()
	m, err := NewMachine(info, b, opts)
	if err != nil {
		return nil, err
	}
	for t := 0; t < m.opts.T; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.RunStep(t); err != nil {
			return nil, err
		}
	}
	span.SetAttrs(telemetry.Int("steps", int64(m.opts.T)))
	return m.Result(), nil
}

// sortedNames returns map keys in sorted order (deterministic output).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
