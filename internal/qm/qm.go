// Package qm is Buffy's model library: the Buffy sources for every network
// component the paper analyzes — the buggy FQ-CoDel-inspired fair-queuing
// scheduler of Figure 4 and its RFC 8290 fix, round-robin and
// strict-priority schedulers (Table 1), and the three CCAC components
// (AIMD congestion control, nondeterministic token-bucket path server,
// fixed-delay server) that compose into Figure 7's model.
package qm

import (
	_ "embed"
	"strings"

	"buffy/internal/lang/parser"
	"buffy/internal/lang/typecheck"
)

// FQBuggySrc is the buggy fair-queuing scheduler exactly as in Figure 4.
// The bug (§2.1): a queue in new_queues that empties is deactivated
// immediately, so its next packet re-enters new_queues — which is
// prioritized — letting it starve queues in old_queues indefinitely.
//
//go:embed models/fq_buggy.buffy
var FQBuggySrc string

// FQBuggyQuerySrc instruments the buggy scheduler with FPerf's starvation
// query (§6.1): the monitor cdeq1 counts packets dequeued from input
// buffer 1, and the query asks whether queue 1 — despite having traffic
// waiting in every single step — can end up served at most once over the
// whole horizon. On the buggy scheduler a witness exists: queue 0's flow
// keeps re-entering the prioritized new_queues list and starves queue 1
// exactly as RFC 8290 warns.
//
//go:embed models/fq_buggy_query.buffy
var FQBuggyQuerySrc string

// FQFixedQuerySrc applies RFC 8290's fix to the same instrumented
// scheduler: a queue served from new_queues is always demoted to
// old_queues (even if it just emptied), and an empty queue is only
// deactivated when it reaches the head of old_queues — after every other
// old queue has had its turn. Under the same query and demand assumption,
// queue 0 can no longer monopolize service.
//
//go:embed models/fq_fixed_query.buffy
var FQFixedQuerySrc string

// RRSrc is a round-robin scheduler: serve the first non-empty queue at or
// after the last served position.
//
//go:embed models/rr.buffy
var RRSrc string

// RRQuerySrc instruments round-robin with the same starvation query used
// for FQ; round-robin serves queue 1 at least every other step while it
// has demand, so the witness search must fail.
//
//go:embed models/rr_query.buffy
var RRQuerySrc string

// SPSrc is a strict-priority scheduler: lower index = higher priority.
//
//go:embed models/sp.buffy
var SPSrc string

// SPQuerySrc instruments strict priority with the starvation query. A
// higher-priority queue legally starves queue 1 by design, so a witness
// must exist (and trivially so).
//
//go:embed models/sp_query.buffy
var SPQuerySrc string

// PathServerSrc is CCAC's generalized, nondeterministic token-bucket path
// server (§6.2). Per step (one RTT-granularity tick) it gains C tokens
// (capped at C+B) and serves a havoc-chosen amount bounded above by both
// tokens and backlog, and below by tokens-B (the token bucket's service
// guarantee: it cannot fall more than a burst B behind rate C) unless the
// queue runs dry. Unused credit beyond the cap is wasted. Serviced packets
// leave through pab (they double as acks in the Figure 7 composition); the
// delivered monitor stands in for Figure 7's serviced-data sink.
//
//go:embed models/path_server.buffy
var PathServerSrc string

// DelaySrc is a fixed-delay server stage: everything that arrived this
// step leaves at the end of it, so each composed stage adds one step of
// delay (chain D copies for a delay of D).
//
//go:embed models/delay.buffy
var DelaySrc string

// AIMDSrc is an additive-increase congestion-control sender at RTT
// granularity: each step it absorbs the acks that came back, grows its
// window by 1 per acked round, shrinks additively when a round yields no
// acks while data is outstanding (a loss signal), and sends up to
// cwnd - inflight new packets from the application buffer. (CCAC's
// multiplicative decrease needs run-time division, which Buffy's solver
// profile excludes (§7); an additive decrease preserves the case study's
// behaviour — the ack-burst loss happens on the increase path.)
//
//go:embed models/aimd.buffy
var AIMDSrc string

// DRRSrc is a deficit-round-robin scheduler at one-departure-per-step
// granularity: each queue accumulates a quantum Q of service credit when
// the rotor reaches it, spends one credit per transmitted packet, and
// forfeits its credit when idle. The embedded assert states work
// conservation: whenever any queue is backlogged, a packet departs.
//
//go:embed models/drr.buffy
var DRRSrc string

// ShaperSrc is a byte-granularity token-bucket traffic shaper: per step it
// gains RATE bytes of credit (capped at BURST) and releases the maximal
// FIFO prefix of packets that fits in the credit — packets block on their
// full size (a half-transmitted packet never departs). The asserts state
// the shaper property: output bytes never exceed the token-bucket envelope
// RATE*t + BURST.
//
//go:embed models/shaper.buffy
var ShaperSrc string

// TBRLSrc is a BASEL-style token-bucket → rate-latency tandem: a regulator
// admits traffic from src into the queue q at rate RATE with burst BURST,
// and a constant-rate server drains q at C packets per step (RATE <= C).
// The dep monitor counts departures, giving bound queries a departure
// clock. The netcalc backend bounds q's backlog by BURST (the asserted
// invariant) and the queueing delay by BURST/C.
//
//go:embed models/tbrl.buffy
var TBRLSrc string

// SPTandemSrc is a two-hop strict-priority tandem with a shaped
// low-priority victim flow: at each hop a token-bucket-regulated
// high-priority cross flow (rate RH, burst BH) preempts the victim
// (rate RV, burst BV) on a server of rate C. The victim traverses both
// hops (vraw → vq1 → vq2 → vout); vdep counts its departures. This is the
// classic "pay bursts only once" topology where SFA beats hop-by-hop TFA.
//
//go:embed models/sptandem.buffy
var SPTandemSrc string

// Load parses and checks a Buffy source.
func Load(src string) (*typecheck.Info, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return typecheck.Check(prog)
}

// MustLoad is Load for known-good embedded sources.
func MustLoad(src string) *typecheck.Info {
	info, err := Load(src)
	if err != nil {
		panic("qm: embedded source failed to load: " + err.Error())
	}
	return info
}

// CountLoC counts the non-blank, non-comment lines of a Buffy source —
// the measure used in Table 1's language-size comparison.
func CountLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n
}
