package fperfenc

import (
	_ "embed"
	"strings"
)

// The Table 1 comparison measures the scheduling logic a user writes by
// hand against the corresponding Buffy program. Each encoding file embeds
// itself so the harness can count its lines at run time; the
// scheduler-agnostic list/queue plumbing in fperfenc.go is excluded, just
// as the paper excludes FPerf's shared constraint library from the
// "scheduling logic alone is ~200 lines" figure.

//go:embed fq.go
var fqSource string

//go:embed rr.go
var rrSource string

//go:embed sp.go
var spSource string

const (
	beginMark = "// BEGIN SCHEDULING LOGIC"
	endMark   = "// END SCHEDULING LOGIC"
)

// countRegion counts non-blank, non-comment lines between the markers.
func countRegion(src string) int {
	start := strings.Index(src, beginMark)
	end := strings.Index(src, endMark)
	if start < 0 || end < 0 || end < start {
		return 0
	}
	body := src[start:end]
	n := 0
	for _, line := range strings.Split(body, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n
}

// LoCFQ returns the hand-encoded FQ scheduler's line count.
func LoCFQ() int { return countRegion(fqSource) }

// LoCRR returns the hand-encoded round-robin scheduler's line count.
func LoCRR() int { return countRegion(rrSource) }

// LoCSP returns the hand-encoded strict-priority scheduler's line count.
func LoCSP() int { return countRegion(spSource) }
