package fperfenc

import (
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// EncodeFQ is the FPerf-style direct encoding of the buggy fair-queuing
// scheduler of §2.1 — the hand-written counterpart of the 18-line Buffy
// program in Figure 4 (qm.FQBuggyQuerySrc), instrumented with the same
// starvation query. Every step of the scheduler's behaviour is spelled
// out as explicit formula construction: guarded list mutations for
// new_queues/old_queues, ite-chains for every ibs[head] access, and
// per-iteration guard threading for the round-robin scan — the style of
// Figure 1, where "deciding whether to demote a queue ... involves
// directly constructing formulas with logical operators for each time
// step and for each possible value of the head of new_queues".

// BEGIN SCHEDULING LOGIC (counted for Table 1)
func EncodeFQ(sv *solver.Solver, N, T int) *Encoding {
	b := sv.Builder()
	enc := &Encoding{N: N, T: T}
	enc.Arrive = mkArrivals(sv, "fq", N, T)
	// Queue backlogs, the two pointer lists, and the monitor.
	qlen := make([]*term.Term, N)
	for i := range qlen {
		qlen[i] = b.IntConst(0)
	}
	nq := newSymList(b, listCap(N))
	oq := newSymList(b, listCap(N))
	cdeq1 := b.IntConst(0)
	var assumes []*term.Term

	for t := 0; t < T; t++ {
		// Input traffic flushes into the queues at the start of the step.
		for i := 0; i < N; i++ {
			qlen[i] = arriveInto(b, qlen[i], enc.Arrive[i][t])
		}
		// Workload assumption: queue 1 always has outstanding demand.
		assumes = append(assumes, b.Lt(b.IntConst(0), qlen[1]))

		// Activation scan: a backlogged queue in neither list joins
		// new_queues. One guarded push per queue, in index order.
		for i := 0; i < N; i++ {
			iT := b.IntConst(int64(i))
			active := b.Or(nq.has(b, iT), oq.has(b, iT))
			cond := b.And(b.Lt(b.IntConst(0), qlen[i]), b.Not(active))
			nq.pushBack(b, iT, cond)
		}

		// Dequeue scan: up to N attempts to find a transmitting queue.
		dequeued := b.False()
		head := b.IntConst(0)
		servedThis := make([]*term.Term, N)
		for i := range servedThis {
			servedThis[i] = b.False()
		}
		for i := 0; i < N; i++ {
			g0 := b.Not(dequeued)
			head = b.Ite(g0, b.IntConst(-1), head)
			// The emptiness test must be snapshotted BEFORE the guarded
			// pop mutates the list — evaluating it afterwards double-pops
			// when new_queues held exactly one entry. (A bug of exactly
			// the kind §2.2 warns hand encodings invite; our differential
			// test against the Buffy pipeline caught it.)
			nqEmpty := nq.empty(b)
			// head = nq.pop_front() when new_queues is non-empty...
			g1 := b.And(g0, b.Not(nqEmpty))
			h1 := nq.popFront(b, g1)
			head = b.Ite(g1, h1, head)
			// ...otherwise the head of old_queues transmits.
			g2 := b.And(g0, nqEmpty, b.Not(oq.empty(b)))
			h2 := oq.popFront(b, g2)
			head = b.Ite(g2, h2, head)

			g3 := b.And(g0, b.Neq(head, b.IntConst(-1)))
			backlogAtHead := selectByIndex(b, qlen, head)
			// Demotion (the buggy part: a queue that will empty is
			// deactivated instead of demoted — no push happens for it).
			demote := b.And(g3, b.Lt(b.IntConst(1), backlogAtHead))
			oq.pushBack(b, head, demote)
			// Transmission.
			serve := b.And(g3, b.Lt(b.IntConst(0), backlogAtHead))
			qlen = decrementAt(b, qlen, head, serve)
			dequeued = b.Or(dequeued, serve)
			for k := 0; k < N; k++ {
				hit := b.And(serve, b.Eq(head, b.IntConst(int64(k))))
				servedThis[k] = b.Or(servedThis[k], hit)
			}
			cdeq1 = b.Add(cdeq1, boolToInt(b, b.And(serve, b.Eq(head, b.IntConst(1)))))
		}

		// Record the step's observables.
		enc.QLen = appendColumn(enc.QLen, qlen)
		enc.Served = appendColumn(enc.Served, servedThis)
		enc.CDeq1 = append(enc.CDeq1, cdeq1)
	}
	enc.Assume = b.And(assumes...)
	enc.Query = b.Le(enc.CDeq1[T-1], b.IntConst(1))
	return enc
}

// END SCHEDULING LOGIC

// appendColumn transposes per-step values into the [queue][step] layout.
func appendColumn(dst [][]*term.Term, col []*term.Term) [][]*term.Term {
	if dst == nil {
		dst = make([][]*term.Term, len(col))
	}
	for i, v := range col {
		dst[i] = append(dst[i], v)
	}
	return dst
}
