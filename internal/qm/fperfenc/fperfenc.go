// Package fperfenc contains FPerf-style *direct* encodings of the three
// schedulers of Table 1 — the state of the art Buffy replaces. Each
// encoding builds the per-step logical constraints by hand against the
// solver's term API, exactly the way Figure 1 of the paper shows FPerf
// modeling queue demotion with Z3's C++ API: explicit variables for every
// piece of state at every time step, and hand-rolled conjunctions,
// disjunctions and ite-chains for every case that can arise.
//
// The point of this package is the comparison: the same schedulers are 7,
// 10 and 18 lines of Buffy (package qm), and these encodings are the
// hundreds of lines one writes without the language (Table 1). The
// differential tests check that both routes produce identical verdicts, so
// the LoC gap is an apples-to-apples measurement.
//
// This file holds the scheduler-agnostic plumbing (bounded symbolic lists,
// queue-length updates, arrival handling) that FPerf likewise keeps in its
// shared library — the paper counts it separately from the "scheduling
// logic alone" (~200 lines for FQ), and so does our Table 1 harness.
package fperfenc

import (
	"fmt"

	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// Encoding exposes the artifacts of a direct scheduler encoding.
type Encoding struct {
	N, T int
	// Arrive[i][t] is the symbolic "queue i receives one packet at step t".
	Arrive [][]*term.Term
	// QLen[i][t] is queue i's backlog at the END of step t.
	QLen [][]*term.Term
	// Served[i][t] is true when queue i transmitted at step t.
	Served [][]*term.Term
	// CDeq1[t] counts queue 1's transmissions through the end of step t.
	CDeq1 []*term.Term
	// Query is the starvation query at the final step (cdeq1 <= 1 with
	// queue 1 backlogged every step), matching the Buffy sources in qm.
	Query *term.Term
	// Assume conjoins the demand assumptions (queue 1 backlogged).
	Assume *term.Term
}

// cap is the queue capacity used by all encodings (matches ir's default).
const cap = 8

// symList is a bounded list of integers encoded as per-slot variables —
// the scheduler-agnostic queue-of-pointers state FPerf encodes with
// "100s of lines of code creating additional scheduler-agnostic
// constraints" (§2.2).
type symList struct {
	elems []*term.Term
	size  *term.Term
}

func newSymList(b *term.Builder, capacity int) *symList {
	l := &symList{size: b.IntConst(0)}
	for i := 0; i < capacity; i++ {
		l.elems = append(l.elems, b.IntConst(0))
	}
	return l
}

func (l *symList) clone() *symList {
	return &symList{elems: append([]*term.Term(nil), l.elems...), size: l.size}
}

// pushBack appends v under guard g (dropped silently when full).
func (l *symList) pushBack(b *term.Builder, v, g *term.Term) {
	fits := b.Lt(l.size, b.IntConst(int64(len(l.elems))))
	place := b.And(g, fits)
	for j := range l.elems {
		here := b.And(place, b.Eq(l.size, b.IntConst(int64(j))))
		l.elems[j] = b.Ite(here, v, l.elems[j])
	}
	l.size = b.Add(l.size, b.Ite(place, b.IntConst(1), b.IntConst(0)))
}

// popFront removes and returns the head under guard g (0 when empty).
func (l *symList) popFront(b *term.Builder, g *term.Term) *term.Term {
	nonEmpty := b.Lt(b.IntConst(0), l.size)
	do := b.And(g, nonEmpty)
	head := b.Ite(nonEmpty, l.elems[0], b.IntConst(0))
	for j := 0; j < len(l.elems)-1; j++ {
		l.elems[j] = b.Ite(do, l.elems[j+1], l.elems[j])
	}
	l.size = b.Sub(l.size, b.Ite(do, b.IntConst(1), b.IntConst(0)))
	return head
}

// has reports membership among the first size elements.
func (l *symList) has(b *term.Builder, v *term.Term) *term.Term {
	hits := make([]*term.Term, len(l.elems))
	for i := range l.elems {
		inRange := b.Lt(b.IntConst(int64(i)), l.size)
		hits[i] = b.And(inRange, b.Eq(l.elems[i], v))
	}
	return b.Or(hits...)
}

func (l *symList) empty(b *term.Builder) *term.Term {
	return b.Eq(l.size, b.IntConst(0))
}

// mkArrivals allocates one symbolic arrival flag per queue per step and
// returns the (capacity-clamped) updated queue lengths after the arrivals
// of step t flush in.
func mkArrivals(sv *solver.Solver, name string, n, T int) [][]*term.Term {
	b := sv.Builder()
	arrive := make([][]*term.Term, n)
	for i := 0; i < n; i++ {
		arrive[i] = make([]*term.Term, T)
		for t := 0; t < T; t++ {
			arrive[i][t] = b.Var(fmt.Sprintf("%s!arr!q%d!t%d", name, i, t), term.Bool)
		}
	}
	return arrive
}

// arriveInto clamps an arrival into a queue at capacity.
func arriveInto(b *term.Builder, qlen, arrived *term.Term) *term.Term {
	fits := b.Lt(qlen, b.IntConst(cap))
	return b.Add(qlen, b.Ite(b.And(arrived, fits), b.IntConst(1), b.IntConst(0)))
}

// selectByIndex returns values[idx] as an ite-chain (0 when out of range) —
// the hand-written form of every ibs[head] access.
func selectByIndex(b *term.Builder, values []*term.Term, idx *term.Term) *term.Term {
	out := b.IntConst(0)
	for i := len(values) - 1; i >= 0; i-- {
		out = b.Ite(b.Eq(idx, b.IntConst(int64(i))), values[i], out)
	}
	return out
}

// decrementAt returns values with values[idx] decremented by one (no
// change when idx is out of range) — the hand-written guarded update.
func decrementAt(b *term.Builder, values []*term.Term, idx, g *term.Term) []*term.Term {
	out := make([]*term.Term, len(values))
	for i := range values {
		hit := b.And(g, b.Eq(idx, b.IntConst(int64(i))))
		out[i] = b.Ite(hit, b.Sub(values[i], b.IntConst(1)), values[i])
	}
	return out
}

func boolToInt(b *term.Builder, t *term.Term) *term.Term {
	return b.Ite(t, b.IntConst(1), b.IntConst(0))
}

func listCap(n int) int {
	if n < 4 {
		return 4
	}
	return n
}
