package fperfenc

import (
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// EncodeRR is the FPerf-style direct encoding of the round-robin
// scheduler (qm.RRQuerySrc): a persistent next-pointer, a scan with
// hand-threaded guards, and the wrap-around arithmetic written out as
// explicit ite terms.

// BEGIN SCHEDULING LOGIC (counted for Table 1)
func EncodeRR(sv *solver.Solver, N, T int) *Encoding {
	b := sv.Builder()
	enc := &Encoding{N: N, T: T}
	enc.Arrive = mkArrivals(sv, "rr", N, T)
	qlen := make([]*term.Term, N)
	for i := range qlen {
		qlen[i] = b.IntConst(0)
	}
	next := b.IntConst(0)
	cdeq1 := b.IntConst(0)
	var assumes []*term.Term

	for t := 0; t < T; t++ {
		for i := 0; i < N; i++ {
			qlen[i] = arriveInto(b, qlen[i], enc.Arrive[i][t])
		}
		assumes = append(assumes, b.Lt(b.IntConst(0), qlen[1]))

		dequeued := b.False()
		servedThis := make([]*term.Term, N)
		for i := range servedThis {
			servedThis[i] = b.False()
		}
		for i := 0; i < N; i++ {
			// j = (next + i) mod N, written as compare-and-subtract.
			j := b.Add(next, b.IntConst(int64(i)))
			j = b.Ite(b.Ge(j, b.IntConst(int64(N))), b.Sub(j, b.IntConst(int64(N))), j)
			backlogAtJ := selectByIndex(b, qlen, j)
			serve := b.And(b.Not(dequeued), b.Lt(b.IntConst(0), backlogAtJ))
			qlen = decrementAt(b, qlen, j, serve)
			// Advance the pointer past the served queue, with wrap-around.
			adv := b.Add(j, b.IntConst(1))
			adv = b.Ite(b.Ge(adv, b.IntConst(int64(N))), b.IntConst(0), adv)
			next = b.Ite(serve, adv, next)
			dequeued = b.Or(dequeued, serve)
			for k := 0; k < N; k++ {
				hit := b.And(serve, b.Eq(j, b.IntConst(int64(k))))
				servedThis[k] = b.Or(servedThis[k], hit)
			}
			cdeq1 = b.Add(cdeq1, boolToInt(b, b.And(serve, b.Eq(j, b.IntConst(1)))))
		}
		enc.QLen = appendColumn(enc.QLen, qlen)
		enc.Served = appendColumn(enc.Served, servedThis)
		enc.CDeq1 = append(enc.CDeq1, cdeq1)
	}
	enc.Assume = b.And(assumes...)
	enc.Query = b.Le(enc.CDeq1[T-1], b.IntConst(1))
	return enc
}

// END SCHEDULING LOGIC
