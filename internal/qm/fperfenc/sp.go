package fperfenc

import (
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

// EncodeSP is the FPerf-style direct encoding of the strict-priority
// scheduler (qm.SPQuerySrc): serve the lowest-index non-empty queue.

// BEGIN SCHEDULING LOGIC (counted for Table 1)
func EncodeSP(sv *solver.Solver, N, T int) *Encoding {
	b := sv.Builder()
	enc := &Encoding{N: N, T: T}
	enc.Arrive = mkArrivals(sv, "sp", N, T)
	qlen := make([]*term.Term, N)
	for i := range qlen {
		qlen[i] = b.IntConst(0)
	}
	cdeq1 := b.IntConst(0)
	var assumes []*term.Term

	for t := 0; t < T; t++ {
		for i := 0; i < N; i++ {
			qlen[i] = arriveInto(b, qlen[i], enc.Arrive[i][t])
		}
		assumes = append(assumes, b.Lt(b.IntConst(0), qlen[1]))

		dequeued := b.False()
		servedThis := make([]*term.Term, N)
		for i := 0; i < N; i++ {
			serve := b.And(b.Not(dequeued), b.Lt(b.IntConst(0), qlen[i]))
			qlen[i] = b.Ite(serve, b.Sub(qlen[i], b.IntConst(1)), qlen[i])
			dequeued = b.Or(dequeued, serve)
			servedThis[i] = serve
			if i == 1 {
				cdeq1 = b.Add(cdeq1, boolToInt(b, serve))
			}
		}
		enc.QLen = appendColumn(enc.QLen, qlen)
		enc.Served = appendColumn(enc.Served, servedThis)
		enc.CDeq1 = append(enc.CDeq1, cdeq1)
	}
	enc.Assume = b.And(assumes...)
	enc.Query = b.Le(enc.CDeq1[T-1], b.IntConst(1))
	return enc
}

// END SCHEDULING LOGIC
