package fperfenc

import (
	"math/rand"
	"testing"

	"buffy/internal/buffer"
	"buffy/internal/ir"
	"buffy/internal/qm"
	"buffy/internal/smt/solver"
	"buffy/internal/smt/term"
)

func TestLoCCountsArePositiveAndOrdered(t *testing.T) {
	fq, rr, sp := LoCFQ(), LoCRR(), LoCSP()
	if fq == 0 || rr == 0 || sp == 0 {
		t.Fatalf("line counting failed: fq=%d rr=%d sp=%d", fq, rr, sp)
	}
	if !(fq > rr && rr > sp) {
		t.Errorf("expected fq > rr > sp, got %d, %d, %d", fq, rr, sp)
	}
	// Sanity against the paper's magnitudes (FPerf FQ ~197, RR 60, SP 33):
	// the hand encodings must dwarf their Buffy sources.
	if bl := qm.CountLoC(qm.FQBuggySrc); fq < 2*bl {
		t.Errorf("FQ direct encoding (%d) should dwarf the Buffy program (%d)", fq, bl)
	}
}

// S1: the direct encodings and the Buffy pipeline must agree on the
// starvation-query verdict.
func TestVerdictAgreement(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		encode  func(sv *solver.Solver, N, T int) *Encoding
		n, T    int
		wantSat bool
	}{
		{"fq-buggy", qm.FQBuggyQuerySrc, EncodeFQ, 2, 5, true},
		{"rr", qm.RRQuerySrc, EncodeRR, 2, 6, false},
		{"sp", qm.SPQuerySrc, EncodeSP, 2, 4, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Direct encoding verdict.
			sv1 := solver.New(solver.Options{})
			enc := c.encode(sv1, c.n, c.T)
			sv1.Assert(enc.Assume)
			sv1.Assert(enc.Query)
			direct := sv1.Check() == solver.Sat

			// Buffy pipeline verdict (count model, same shape).
			info, err := qm.Load(c.src)
			if err != nil {
				t.Fatal(err)
			}
			sv2 := solver.New(solver.Options{})
			comp, err := ir.Compile(info, sv2.Builder(), ir.Options{
				T: c.T, Params: map[string]int64{"N": int64(c.n)},
				Model: buffer.CountModel{},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range comp.Assumes {
				sv2.Assert(a)
			}
			b2 := sv2.Builder()
			sv2.Assert(b2.And(comp.AssertHolds(), comp.AssertReached()))
			pipeline := sv2.Check() == solver.Sat

			if direct != pipeline {
				t.Fatalf("verdicts disagree: direct=%v pipeline=%v", direct, pipeline)
			}
			if direct != c.wantSat {
				t.Fatalf("verdict = %v, want %v", direct, c.wantSat)
			}
		})
	}
}

// Stronger agreement: pin identical random arrival patterns in both
// encodings and compare every queue length and the monitor, step by step.
func TestStepwiseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name   string
		src    string
		encode func(sv *solver.Solver, N, T int) *Encoding
	}{
		{"fq", qm.FQBuggyQuerySrc, EncodeFQ},
		{"rr", qm.RRQuerySrc, EncodeRR},
		{"sp", qm.SPQuerySrc, EncodeSP},
	}
	const N, T = 2, 4
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for iter := 0; iter < 4; iter++ {
				// Random pattern; queue 1 always receives (to satisfy the
				// demand assumption in both encodings).
				plan := make([][]bool, N)
				for i := range plan {
					plan[i] = make([]bool, T)
					for tt := range plan[i] {
						plan[i][tt] = i == 1 || rng.Intn(2) == 0
					}
				}

				sv1 := solver.New(solver.Options{})
				enc := c.encode(sv1, N, T)
				b1 := sv1.Builder()
				sv1.Assert(enc.Assume)
				for i := 0; i < N; i++ {
					for tt := 0; tt < T; tt++ {
						if plan[i][tt] {
							sv1.Assert(enc.Arrive[i][tt])
						} else {
							sv1.Assert(b1.Not(enc.Arrive[i][tt]))
						}
					}
				}
				if got := sv1.Check(); got != solver.Sat {
					t.Fatalf("iter %d: direct encoding infeasible: %v", iter, got)
				}

				info, err := qm.Load(c.src)
				if err != nil {
					t.Fatal(err)
				}
				sv2 := solver.New(solver.Options{})
				comp, err := ir.Compile(info, sv2.Builder(), ir.Options{
					T: T, Params: map[string]int64{"N": N},
					Model: buffer.CountModel{},
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range comp.Assumes {
					sv2.Assert(a)
				}
				b2 := sv2.Builder()
				for _, a := range comp.Arrivals {
					i := int64(a.Buffer[4] - '0') // "ibs[k]"
					if plan[i][a.Step] {
						sv2.Assert(a.Valid)
					} else {
						sv2.Assert(b2.Not(a.Valid))
					}
				}
				if got := sv2.Check(); got != solver.Sat {
					t.Fatalf("iter %d: pipeline infeasible: %v", iter, got)
				}

				ctx := &buffer.Ctx{B: b2, Assume: func(*term.Term) {}}
				for tt := 0; tt < T; tt++ {
					for i := 0; i < N; i++ {
						d := sv1.IntValue(enc.QLen[i][tt])
						name := "ibs[" + string(rune('0'+i)) + "]"
						p := sv2.IntValue(comp.Steps[tt].Buffers[name].BacklogP(ctx))
						if d != p {
							t.Fatalf("iter %d step %d: qlen[%d] direct=%d pipeline=%d", iter, tt, i, d, p)
						}
					}
					d := sv1.IntValue(enc.CDeq1[tt])
					p := comp.Steps[tt].Vars["cdeq1"]
					if pv := sv2.IntValue(p); d != pv {
						t.Fatalf("iter %d step %d: cdeq1 direct=%d pipeline=%d", iter, tt, d, pv)
					}
				}
			}
		})
	}
}
