package qm_test

import (
	"testing"

	"buffy/internal/backend/smtbe"
	"buffy/internal/ir"
	"buffy/internal/qm"
)

// Every embedded model must parse and check.
func TestAllModelsLoad(t *testing.T) {
	srcs := map[string]string{
		"fq-buggy": qm.FQBuggySrc, "fq-buggy-query": qm.FQBuggyQuerySrc,
		"fq-fixed-query": qm.FQFixedQuerySrc,
		"rr":             qm.RRSrc, "rr-query": qm.RRQuerySrc,
		"sp": qm.SPSrc, "sp-query": qm.SPQuerySrc,
		"path": qm.PathServerSrc, "delay": qm.DelaySrc,
		"aimd": qm.AIMDSrc, "shaper": qm.ShaperSrc,
		"tbrl": qm.TBRLSrc, "sptandem": qm.SPTandemSrc,
	}
	for name, src := range srcs {
		if _, err := qm.Load(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCountLoC(t *testing.T) {
	if got := qm.CountLoC("a\n// comment\n\n  b\n"); got != 2 {
		t.Errorf("CountLoC = %d, want 2", got)
	}
	// Figure 4 has 18 non-comment lines in the paper; ours matches ±1
	// (source formatting).
	if got := qm.CountLoC(qm.FQBuggySrc); got < 17 || got > 20 {
		t.Errorf("FQ LoC = %d, expected ~18 (Figure 4)", got)
	}
	if got := qm.CountLoC(qm.SPSrc); got != 7 {
		t.Errorf("SP LoC = %d, want 7 (Table 1)", got)
	}
}

func TestMustLoadPanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	qm.MustLoad("not buffy")
}

// The shaper's token-bucket envelope holds on all executions, including
// multi-byte packets.
func TestShaperEnvelopeHolds(t *testing.T) {
	info, err := qm.Load(qm.ShaperSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smtbe.Check(info, smtbe.Options{
		IR: ir.Options{
			T: 4, Params: map[string]int64{"RATE": 2, "BURST": 3},
			MaxBytes: 3, ArrivalsPerStep: 2,
		},
		Mode: smtbe.Verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.Holds {
		t.Fatalf("shaper envelope: %v\n%v", res.Status, res.Trace)
	}
}

// The regulator invariants of the two netcalc corpus models hold on all
// executions: shaped queues stay within their configured bursts.
func TestNetcalcModelsInvariantsHold(t *testing.T) {
	cases := []struct {
		name, src string
		params    map[string]int64
	}{
		{"tbrl", qm.TBRLSrc, map[string]int64{"RATE": 1, "BURST": 3, "C": 2}},
		{"sptandem", qm.SPTandemSrc, map[string]int64{"RH": 1, "BH": 2, "RV": 1, "BV": 2, "C": 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info, err := qm.Load(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := smtbe.Check(info, smtbe.Options{
				IR:   ir.Options{T: 4, Params: tc.params, ArrivalsPerStep: 2, BufferCap: 16},
				Mode: smtbe.Verify,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != smtbe.Holds {
				t.Fatalf("%s invariants: %v\n%v", tc.name, res.Status, res.Trace)
			}
		})
	}
}

// A witness exists where the shaper emits a full BURST of bytes in a
// single step — credit accumulates while the input idles, then a burst of
// arrivals drains it at once.
func TestShaperBurstWitness(t *testing.T) {
	const burstSrc = `
shaperw(buffer sin, buffer sout){
  global int credit;
  monitor int delta;
  local int before; local int moved;
  credit = credit + RATE;
  if (credit > BURST) { credit = BURST; }
  before = backlog-b(sin);
  move-b(sin, sout, credit);
  moved = before - backlog-b(sin);
  credit = credit - moved;
  delta = moved;
  if (t == T - 1) { assert(delta == BURST); }}
`
	info, err := qm.Load(burstSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smtbe.Check(info, smtbe.Options{
		IR: ir.Options{
			T: 3, Params: map[string]int64{"RATE": 2, "BURST": 4},
			MaxBytes: 2, ArrivalsPerStep: 2,
		},
		Mode: smtbe.Witness,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.WitnessFound {
		t.Fatalf("burst witness: %v", res.Status)
	}
	// The witness must include a quiet early step (credit accumulation).
	perStepBytes := map[int]int64{}
	for _, p := range res.Trace.Packets {
		perStepBytes[p.Step] += p.Bytes
	}
	if perStepBytes[0] > 2 && perStepBytes[1] > 2 {
		t.Errorf("expected an idle-ish early step to accumulate credit; arrivals: %v", perStepBytes)
	}
}

// DRR is work conserving on every execution.
func TestDRRWorkConservation(t *testing.T) {
	info, err := qm.Load(qm.DRRSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smtbe.Check(info, smtbe.Options{
		IR:   ir.Options{T: 4, Params: map[string]int64{"N": 2, "Q": 2}},
		Mode: smtbe.Verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.Holds {
		t.Fatalf("DRR work conservation: %v\n%v", res.Status, res.Trace)
	}
}

// With quantum 1, DRR under saturating demand alternates queues like
// round-robin: neither queue can take 5 of 6 services.
func TestDRRQuantumFairness(t *testing.T) {
	src := `
drrq(buffer[N] ibs, buffer ob){
  global int cur; global int[N] deficit;
  monitor int cdeq0;
  assume(backlog-p(ibs[0]) > 0);
  assume(backlog-p(ibs[1]) > 0);
  local bool dequeued;
  local dequeued = false;
  for (i in 0..N + 1) do {
    if (!dequeued) {
      if (backlog-p(ibs[cur]) == 0) {
        deficit[cur] = 0;
        cur = cur + 1;
        if (cur >= N) { cur = 0; }
        deficit[cur] = deficit[cur] + Q;
      } else {
        if (deficit[cur] > 0) {
          move-p(ibs[cur], ob, 1);
          deficit[cur] = deficit[cur] - 1;
          if (cur == 0) { cdeq0 = cdeq0 + 1; }
          dequeued = true;
        } else {
          cur = cur + 1;
          if (cur >= N) { cur = 0; }
          deficit[cur] = deficit[cur] + Q;
        }
      }
    }
  }
  if (t == T - 1) { assert(cdeq0 >= T - 1); }}
`
	info, err := qm.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smtbe.Check(info, smtbe.Options{
		IR:   ir.Options{T: 6, Params: map[string]int64{"N": 2, "Q": 1}, ArrivalsPerStep: 2},
		Mode: smtbe.Witness,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != smtbe.NoWitness {
		t.Fatalf("Q=1 DRR should be fair under saturation: %v\n%v", res.Status, res.Trace)
	}
}
